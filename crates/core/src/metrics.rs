//! Epoch and cost metrics (§4.2 of the paper).
//!
//! The analysis of the paper charges all computation to *epochs*: an epoch is the
//! maximal time interval during which a hyperedge stays in the matching at a fixed
//! level (Definition 4.5).  Epochs end *naturally* (the adversary deletes the
//! matched edge) or *induced* (the algorithm kicks the edge out in favour of a
//! higher-level one).  Lemma 4.6 guarantees every `grand-random-settle` call creates
//! at least `|B|/α³` new epochs, and Lemmas 4.13/4.14 bound the fraction of "short"
//! epochs — those for which only few of the temporarily deleted edges in `D(e)` were
//! deleted before `e` itself.
//!
//! This module counts exactly those quantities so that experiment E8 can report
//! them, and exposes aggregate work/depth/batch counters for E2/E3.

/// Per-level epoch statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Number of epochs (matched edges) created at this level.
    pub epochs_created: u64,
    /// Epochs ended by an adversary deletion of the matched edge ("natural").
    pub epochs_ended_natural: u64,
    /// Epochs ended by the algorithm kicking the edge out ("induced").
    pub epochs_ended_induced: u64,
    /// Sum of `|D(e)|` over epochs created at this level (sampling-set sizes).
    pub d_size_at_creation: u64,
    /// Sum over naturally ended epochs of the number of `D(e)` edges the adversary
    /// deleted before deleting `e` itself (the "uninterrupted duration" proxy of
    /// Definition 4.8).
    pub d_deleted_before_natural_end: u64,
}

/// Counters accumulated over the lifetime of one algorithm instance.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Number of batches processed.
    pub batches: u64,
    /// Number of individual updates processed.
    pub updates: u64,
    /// Adversary insertions processed.
    pub insertions: u64,
    /// Adversary deletions processed.
    pub deletions: u64,
    /// Deletions that hit a matched edge (the expensive case).
    pub matched_deletions: u64,
    /// Deletions that hit a temporarily deleted edge (the cheapest case).
    pub temp_deleted_deletions: u64,
    /// Edges temporarily deleted by the algorithm (placed into some `D(e)`).
    pub temp_deletions: u64,
    /// Edges re-inserted by the algorithm (from `D(e)` of dead matched edges,
    /// plus kicked-out matched edges themselves).
    pub reinsertions: u64,
    /// Number of `grand-random-settle` invocations.
    pub settle_invocations: u64,
    /// Total `grand-random-subsettle` repetitions across all invocations.
    pub settle_outer_repeats: u64,
    /// Total `grand-random-subsubsettle` iterations (each is one parallel round).
    pub settle_iterations: u64,
    /// Total Luby iterations across all static-matching invocations.
    pub luby_iterations: u64,
    /// Number of full rebuilds triggered by the `N`-doubling rule.
    pub rebuilds: u64,
    /// Number of `process-level` invocations.
    pub levels_processed: u64,
    /// Per-level epoch statistics, indexed by level `0..=L`.
    pub per_level: Vec<LevelStats>,
}

impl Metrics {
    /// Creates zeroed metrics with room for `num_levels + 1` levels.
    #[must_use]
    pub fn new(num_levels: usize) -> Self {
        Metrics {
            per_level: vec![LevelStats::default(); num_levels + 1],
            ..Metrics::default()
        }
    }

    /// Makes sure the per-level table can hold `level` (levels grow on rebuild).
    pub fn ensure_level(&mut self, level: usize) {
        if self.per_level.len() <= level {
            self.per_level.resize(level + 1, LevelStats::default());
        }
    }

    /// Records the creation of an epoch at `level` with a sampling set of size
    /// `d_size`.
    pub fn record_epoch_created(&mut self, level: usize, d_size: u64) {
        self.ensure_level(level);
        self.per_level[level].epochs_created += 1;
        self.per_level[level].d_size_at_creation += d_size;
    }

    /// Records a natural epoch termination at `level` after `d_deleted` of its
    /// temporarily deleted edges were themselves deleted by the adversary.
    pub fn record_epoch_natural_end(&mut self, level: usize, d_deleted: u64) {
        self.ensure_level(level);
        self.per_level[level].epochs_ended_natural += 1;
        self.per_level[level].d_deleted_before_natural_end += d_deleted;
    }

    /// Records an induced epoch termination at `level`.
    pub fn record_epoch_induced_end(&mut self, level: usize) {
        self.ensure_level(level);
        self.per_level[level].epochs_ended_induced += 1;
    }

    /// Total epochs created across all levels.
    #[must_use]
    pub fn total_epochs_created(&self) -> u64 {
        self.per_level.iter().map(|l| l.epochs_created).sum()
    }

    /// Total natural epoch terminations across all levels.
    #[must_use]
    pub fn total_natural_ends(&self) -> u64 {
        self.per_level.iter().map(|l| l.epochs_ended_natural).sum()
    }

    /// Total induced epoch terminations across all levels.
    #[must_use]
    pub fn total_induced_ends(&self) -> u64 {
        self.per_level.iter().map(|l| l.epochs_ended_induced).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_metrics_are_zero() {
        let m = Metrics::new(4);
        assert_eq!(m.per_level.len(), 5);
        assert_eq!(m.total_epochs_created(), 0);
        assert_eq!(m.batches, 0);
    }

    #[test]
    fn epoch_recording_accumulates() {
        let mut m = Metrics::new(2);
        m.record_epoch_created(1, 10);
        m.record_epoch_created(1, 20);
        m.record_epoch_created(2, 5);
        m.record_epoch_natural_end(1, 7);
        m.record_epoch_induced_end(2);
        assert_eq!(m.per_level[1].epochs_created, 2);
        assert_eq!(m.per_level[1].d_size_at_creation, 30);
        assert_eq!(m.per_level[1].epochs_ended_natural, 1);
        assert_eq!(m.per_level[1].d_deleted_before_natural_end, 7);
        assert_eq!(m.per_level[2].epochs_ended_induced, 1);
        assert_eq!(m.total_epochs_created(), 3);
        assert_eq!(m.total_natural_ends(), 1);
        assert_eq!(m.total_induced_ends(), 1);
    }

    #[test]
    fn ensure_level_grows_table() {
        let mut m = Metrics::new(1);
        m.record_epoch_created(6, 1);
        assert_eq!(m.per_level.len(), 7);
        assert_eq!(m.per_level[6].epochs_created, 1);
    }
}
