//! Checkpoint (de)serialization of the parallel algorithm's complete state.
//!
//! The blob is **canonical**: a pure function of the logical state, independent
//! of the history that produced it.  Three representation choices make that
//! true even though the live structures are full of hash maps and
//! history-ordered vectors:
//!
//! * the edge table is written in ascending id order;
//! * the `D(e)` buckets are not written at all — their live content is exactly
//!   the temporarily deleted edges whose `responsible` pointer names `e`
//!   (stale ids of adversary-deleted edges are scrubbed lazily and are
//!   unobservable), so restore re-derives each bucket from the pointers, in
//!   ascending id order.  Bucket order never influences a decision: released
//!   edges feed Luby whose selected set is order-independent;
//! * per-vertex state is not written either — at a batch boundary it is fully
//!   determined by the edge table (Invariant 3.1: a vertex is at level `-1`
//!   iff unmatched, a matched vertex sits at its matched edge's level, and the
//!   owned/unowned sets mirror the stored edge owners and levels).
//!
//! Restore rebuilds the structures through the same `MatcherState` procedures
//! the algorithm itself uses and then runs the full §3.2 invariant check, so a
//! damaged blob surfaces as [`StateError::Corrupt`] rather than as a
//! mysteriously wrong matching later.

use crate::config::LevelingParams;
use crate::invariants;
use crate::metrics::{LevelStats, Metrics};
use crate::state::{EdgeState, MatcherState};
use pdmm_hypergraph::engine::{
    read_state_header, read_state_rng, write_state_header, write_state_rng, StateError, StateParser,
};
use pdmm_hypergraph::types::{EdgeId, VertexId};
use pdmm_primitives::cost_model::CostTracker;
use pdmm_primitives::random::RandomSource;
use rustc_hash::FxHashSet;

/// Engine name recorded in (and demanded of) parallel-engine blobs.
pub(crate) const ENGINE_NAME: &str = "parallel-dynamic";

/// Serializes `state` at a batch boundary; `None` mid-sweep (never the case
/// through the engine API, which only exposes quiescent states).
pub(crate) fn save(state: &MatcherState) -> Option<String> {
    if !state.dirty.is_empty() || !state.undecided.is_empty() {
        return None;
    }
    use std::fmt::Write as _;
    let mut out = String::new();
    write_state_header(
        &mut out,
        ENGINE_NAME,
        state.num_vertices(),
        state.config.max_rank,
    );
    let _ = writeln!(
        out,
        "params {} {}",
        state.params.n_bound, state.updates_since_rebuild
    );
    let c = state.cost.snapshot();
    let _ = writeln!(out, "cost {} {}", c.work, c.depth);
    let (words, index) = state.rng.state();
    write_state_rng(&mut out, words, index);
    let m = &state.metrics;
    let _ = writeln!(
        out,
        "metrics {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        m.batches,
        m.updates,
        m.insertions,
        m.deletions,
        m.matched_deletions,
        m.temp_deleted_deletions,
        m.temp_deletions,
        m.reinsertions,
        m.settle_invocations,
        m.settle_outer_repeats,
        m.settle_iterations,
        m.luby_iterations,
        m.rebuilds,
        m.levels_processed
    );
    let _ = writeln!(out, "levels {}", m.per_level.len());
    for l in &m.per_level {
        let _ = writeln!(
            out,
            "lv {} {} {} {} {}",
            l.epochs_created,
            l.epochs_ended_natural,
            l.epochs_ended_induced,
            l.d_size_at_creation,
            l.d_deleted_before_natural_end
        );
    }
    let mut ids: Vec<EdgeId> = state.edges.keys().copied().collect();
    ids.sort_unstable();
    let _ = writeln!(out, "edges {}", ids.len());
    for id in ids {
        let e = &state.edges[&id];
        let _ = write!(
            out,
            "e {} {} {} {} {} ",
            id.0,
            e.level,
            e.owner.0,
            u8::from(e.matched),
            u8::from(e.temp_deleted)
        );
        match e.responsible {
            Some(r) => {
                let _ = write!(out, "{}", r.0);
            }
            None => out.push('-'),
        }
        let _ = write!(out, " {}", e.d_deleted_count);
        for v in e.vertices.iter() {
            let _ = write!(out, " {}", v.0);
        }
        out.push('\n');
    }
    Some(out)
}

/// Restores a blob written by [`save`] into a freshly built `state`.
pub(crate) fn restore(state: &mut MatcherState, blob: &str) -> Result<(), StateError> {
    if state.metrics.batches != 0 {
        return Err(StateError::NotFresh {
            batches: state.metrics.batches,
        });
    }
    let mut p = StateParser::new(blob);
    read_state_header(
        &mut p,
        ENGINE_NAME,
        state.num_vertices(),
        state.config.max_rank,
    )?;
    let (n_bound, updates_since_rebuild): (u64, u64) = {
        let rest = p.tagged("params")?;
        let [nb, usr] = p.tokens(rest)?;
        (
            p.parse_token(nb, "n bound")?,
            p.parse_token(usr, "updates-since-rebuild count")?,
        )
    };
    let (work, depth): (u64, u64) = {
        let rest = p.tagged("cost")?;
        let [w, d] = p.tokens(rest)?;
        (
            p.parse_token(w, "work total")?,
            p.parse_token(d, "depth total")?,
        )
    };
    let (words, index) = read_state_rng(&mut p)?;
    let mut metrics = {
        let rest = p.tagged("metrics")?;
        let t: [&str; 14] = p.tokens(rest)?;
        let mut vals = [0u64; 14];
        for (v, tok) in vals.iter_mut().zip(&t) {
            *v = p.parse_token(tok, "metrics counter")?;
        }
        Metrics {
            batches: vals[0],
            updates: vals[1],
            insertions: vals[2],
            deletions: vals[3],
            matched_deletions: vals[4],
            temp_deleted_deletions: vals[5],
            temp_deletions: vals[6],
            reinsertions: vals[7],
            settle_invocations: vals[8],
            settle_outer_repeats: vals[9],
            settle_iterations: vals[10],
            luby_iterations: vals[11],
            rebuilds: vals[12],
            levels_processed: vals[13],
            per_level: Vec::new(),
        }
    };
    let level_count: usize = {
        let rest = p.tagged("levels")?;
        p.parse_token(rest, "level count")?
    };
    for _ in 0..level_count {
        let rest = p.tagged("lv")?;
        let [a, b, c, d, e] = p.tokens(rest)?;
        metrics.per_level.push(LevelStats {
            epochs_created: p.parse_token(a, "epoch counter")?,
            epochs_ended_natural: p.parse_token(b, "epoch counter")?,
            epochs_ended_induced: p.parse_token(c, "epoch counter")?,
            d_size_at_creation: p.parse_token(d, "epoch counter")?,
            d_deleted_before_natural_end: p.parse_token(e, "epoch counter")?,
        });
    }

    // Re-derive the leveling parameters exactly as construction and the
    // doubling rebuild do, then size the per-vertex and per-level structures
    // for them (the fresh engine may have fewer levels than the blob).
    let params = LevelingParams::new(state.config.max_rank, n_bound);
    let num_levels = params.num_levels;
    if metrics.per_level.len() < num_levels + 1 {
        return Err(p.corrupt(format!(
            "per-level table has {} entries for {} levels",
            metrics.per_level.len(),
            num_levels
        )));
    }
    state.params = params;
    for vs in &mut state.vertices {
        vs.level = -1;
        vs.matched_edge = None;
        vs.owned.clear();
        vs.unowned = vec![FxHashSet::default(); num_levels + 1];
    }
    state.s_levels = vec![FxHashSet::default(); num_levels + 1];
    state.edges.clear();
    state.dirty.clear();
    state.undecided.clear();

    // Edge table.
    let edge_count: usize = {
        let rest = p.tagged("edges")?;
        p.parse_token(rest, "edge count")?
    };
    let mut matched: Vec<EdgeId> = Vec::new();
    let mut temp_deleted: Vec<(EdgeId, EdgeId)> = Vec::new();
    for _ in 0..edge_count {
        let rest = p.tagged("e")?;
        let mut it = rest.split_whitespace();
        let mut next = |what: &str| {
            it.next()
                .map(str::to_owned)
                .ok_or_else(|| p.corrupt(format!("edge line missing {what}")))
        };
        let id = EdgeId(p.parse_token(&next("id")?, "edge id")?);
        let level: usize = p.parse_token(&next("level")?, "edge level")?;
        let owner = VertexId(p.parse_token(&next("owner")?, "edge owner")?);
        let is_matched = match next("matched flag")?.as_str() {
            "0" => false,
            "1" => true,
            other => return Err(p.corrupt(format!("invalid matched flag `{other}`"))),
        };
        let is_temp = match next("temp-deleted flag")?.as_str() {
            "0" => false,
            "1" => true,
            other => return Err(p.corrupt(format!("invalid temp-deleted flag `{other}`"))),
        };
        let responsible = match next("responsible field")?.as_str() {
            "-" => None,
            tok => Some(EdgeId(p.parse_token(tok, "responsible edge id")?)),
        };
        let d_deleted_count: u64 = p.parse_token(&next("deleted-count field")?, "deleted count")?;
        let mut vertices: Vec<VertexId> = Vec::new();
        for tok in it {
            let v = VertexId(p.parse_token(tok, "vertex id")?);
            if v.index() >= state.vertices.len() {
                return Err(p.corrupt(format!("vertex {v} out of range")));
            }
            vertices.push(v);
        }
        vertices.sort_unstable();
        vertices.dedup();
        if vertices.is_empty() {
            return Err(p.corrupt(format!("edge {id} has no endpoints")));
        }
        if vertices.len() > state.config.max_rank {
            return Err(p.corrupt(format!("edge {id} exceeds the configured rank")));
        }
        if state.edges.contains_key(&id) {
            return Err(p.corrupt(format!("duplicate edge id {id}")));
        }
        if level > num_levels {
            return Err(p.corrupt(format!("edge {id} level {level} > {num_levels}")));
        }
        if !vertices.contains(&owner) {
            return Err(p.corrupt(format!("edge {id} owner {owner} is not an endpoint")));
        }
        if is_temp != responsible.is_some() || (is_matched && is_temp) {
            return Err(p.corrupt(format!("edge {id} has inconsistent flags")));
        }
        if is_matched {
            matched.push(id);
        }
        if let Some(r) = responsible {
            temp_deleted.push((id, r));
        }
        state.edges.insert(
            id,
            EdgeState {
                vertices: vertices.into_boxed_slice(),
                level,
                owner,
                matched: is_matched,
                temp_deleted: is_temp,
                responsible,
                bucket: Vec::new(),
                d_deleted_count,
            },
        );
    }
    p.finish()?;

    // Derive vertex state from the matched edges (Invariant 3.1), then
    // re-register every visible edge in the vertex structures.
    for &id in &matched {
        let (verts, level) = {
            let e = &state.edges[&id];
            (e.vertices.clone(), e.level)
        };
        for &v in verts.iter() {
            let vs = &mut state.vertices[v.index()];
            if vs.matched_edge.is_some() {
                return Err(StateError::Corrupt {
                    line: 0,
                    message: format!("vertex {v} is covered by two matched edges"),
                });
            }
            vs.matched_edge = Some(id);
            vs.level = level as i32;
        }
    }
    let ids: Vec<EdgeId> = state.edges.keys().copied().collect();
    for id in ids {
        if !state.edges[&id].temp_deleted {
            state.add_edge_to_structures(id);
        }
    }
    // Re-derive the `D(·)` buckets from the responsible pointers, in canonical
    // ascending-id order (bucket order is decision-irrelevant; see module doc).
    temp_deleted.sort_unstable();
    for (id, r) in temp_deleted {
        let ok = state
            .edges
            .get(&r)
            .is_some_and(|e| e.matched && !e.temp_deleted);
        if !ok {
            return Err(StateError::Corrupt {
                line: 0,
                message: format!("edge {id} names a non-matched responsible edge {r}"),
            });
        }
        state
            .edges
            .get_mut(&r)
            .expect("checked above")
            .bucket
            .push(id);
    }
    state.flush_dirty();
    invariants::check_all(state).map_err(|msg| StateError::Corrupt {
        line: 0,
        message: format!("restored state violates invariants: {msg}"),
    })?;

    // Install the scalar state last: the structural rebuild above ran through
    // the normal cost-counting procedures, which must not leak into the
    // restored totals.
    state.rng = RandomSource::from_state(words, index);
    let cost = CostTracker::new();
    cost.work(work);
    cost.rounds(depth);
    state.cost = cost;
    state.metrics = metrics;
    state.updates_since_rebuild = updates_since_rebuild;
    Ok(())
}
