//! The public batch-dynamic algorithm (§3.3 of the paper).
//!
//! [`ParallelDynamicMatching`] maintains a maximal matching of a rank-`r`
//! hypergraph under arbitrary batches of hyperedge insertions and deletions.  Each
//! batch is processed by the pipeline of §3.3:
//!
//! 1. deletions of unmatched (or temporarily deleted) hyperedges — the cheap case,
//! 2. deletions of matched hyperedges — the expensive case, handled by sweeping the
//!    levels from `L` down to `0` with `process-level` (Step 1 re-matches the freed
//!    neighbourhoods with the static parallel matcher, Step 2 raises heavy nodes
//!    with `grand-random-settle`),
//! 3. insertions — adversary insertions plus all algorithm-induced re-insertions
//!    (kicked-out matched edges and the contents of their `D(·)` buckets) are
//!    matched greedily-in-parallel among themselves and registered.
//!
//! The `N`-doubling rebuild of §3.2.1 and the per-batch cost/metric reporting used
//! by the experiments also live here.

use crate::config::Config;
use crate::invariants;
use crate::metrics::Metrics;
use crate::persist;
use crate::settle::{process_level, release_bucket_and_remove};
use crate::state::MatcherState;
use pdmm_hypergraph::engine::{
    run_batch, run_batch_trusted, BatchError, BatchKernel, BatchReport, EngineBuilder,
    EngineMetrics, EnginePool, KernelOutcome, MatchingEngine, MatchingIter, RepairError,
    StateError, UpdateCounters, ValidatedBatch,
};
use pdmm_hypergraph::types::{EdgeId, HyperEdge, Update, VertexId};
use pdmm_primitives::cost_model::CostTracker;
use pdmm_static::luby::luby_maximal_matching;
use rustc_hash::FxHashSet;

/// Parallel dynamic maximal matching for rank-`r` hypergraphs
/// (Ghaffari–Trygub, SPAA 2024).
///
/// ```
/// use pdmm_core::{EngineBuilder, ParallelDynamicMatching};
/// use pdmm_hypergraph::types::{EdgeId, HyperEdge, Update, VertexId};
///
/// let mut matcher =
///     ParallelDynamicMatching::from_builder(&EngineBuilder::new(4).seed(42));
/// matcher
///     .apply_batch(&[
///         Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))),
///         Update::Insert(HyperEdge::pair(EdgeId(1), VertexId(2), VertexId(3))),
///     ])
///     .unwrap();
/// assert_eq!(matcher.matching_size(), 2);
/// matcher.apply_batch(&[Update::Delete(EdgeId(0))]).unwrap();
/// assert_eq!(matcher.matching_size(), 1);
/// ```
#[derive(Debug)]
pub struct ParallelDynamicMatching {
    state: MatcherState,
    /// The worker pool every batch runs on (`EngineBuilder::threads`); with no
    /// thread budget, parallel phases use the process-global pool.
    pool: EnginePool,
}

impl ParallelDynamicMatching {
    /// Creates the algorithm over an empty hypergraph on `num_vertices` vertices.
    #[must_use]
    pub fn new(num_vertices: usize, config: Config) -> Self {
        ParallelDynamicMatching {
            state: MatcherState::new(num_vertices, config),
            pool: EnginePool::default(),
        }
    }

    /// Creates the algorithm from the engine-agnostic builder (the canonical
    /// constructor; `new` remains for algorithm-specific `Config` knobs).
    ///
    /// `builder.threads` bounds the worker pool all parallel phases of
    /// `apply_batch` run on; unset, the process-global pool is used.
    #[must_use]
    pub fn from_builder(builder: &EngineBuilder) -> Self {
        ParallelDynamicMatching {
            state: MatcherState::new(builder.num_vertices, Config::from_builder(builder)),
            pool: EnginePool::from_builder(builder),
        }
    }

    /// The worker count this engine is bounded to (`None`: global pool).
    #[must_use]
    pub fn num_threads(&self) -> Option<usize> {
        self.pool.num_threads()
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.state.num_vertices()
    }

    /// Current number of levels `L` of the leveling scheme.
    #[must_use]
    pub fn num_levels(&self) -> usize {
        self.state.num_levels()
    }

    /// Current matching size.
    #[must_use]
    pub fn matching_size(&self) -> usize {
        self.state.matching_size()
    }

    /// The current matching, iterated zero-copy out of the internal edge table.
    pub fn matching(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.state.matched_ids()
    }

    /// Ids of the currently matched hyperedges, collected into a vector.
    #[must_use]
    pub fn matching_ids(&self) -> Vec<EdgeId> {
        self.state.matched_edge_ids()
    }

    /// The matched edge covering `v`, if any.
    #[must_use]
    pub fn matched_edge_of(&self, v: VertexId) -> Option<EdgeId> {
        self.state.vertices[v.index()].matched_edge
    }

    /// Level of vertex `v` in the leveling scheme (`-1` iff unmatched).
    #[must_use]
    pub fn level_of(&self, v: VertexId) -> i32 {
        self.state.level_of(v)
    }

    /// The accumulated work/depth counters.
    #[must_use]
    pub fn cost(&self) -> &CostTracker {
        &self.state.cost
    }

    /// The accumulated epoch/update metrics of §4.2 (per-level epoch counts,
    /// settle counters, …).  The engine-agnostic counters every engine shares
    /// are available through [`MatchingEngine::metrics`].
    #[must_use]
    pub fn epoch_metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Every live hyperedge currently known to the algorithm, *including*
    /// temporarily deleted ones (they are still part of the graph).
    #[must_use]
    pub fn live_edges(&self) -> Vec<HyperEdge> {
        self.state
            .edges
            .iter()
            .map(|(id, e)| HyperEdge::new(*id, e.vertices.to_vec()))
            .collect()
    }

    /// Number of temporarily deleted hyperedges currently parked in `D(·)` buckets.
    #[must_use]
    pub fn num_temp_deleted(&self) -> usize {
        self.state.edges.values().filter(|e| e.temp_deleted).count()
    }

    /// Verifies every structural invariant of §3.2 plus maximality.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_invariants(&mut self) -> Result<(), String> {
        self.state.flush_dirty();
        invariants::check_all(&self.state)
    }

    /// Processes one batch of simultaneous updates and returns a cost report.
    ///
    /// The batch is validated up front; on error nothing was applied.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchError`] if a deletion names an unknown edge, an insertion
    /// reuses a live id, or an inserted edge exceeds the configured maximum rank
    /// or the vertex range.
    pub fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchReport, BatchError> {
        // Run the shared scaffold (validation → kernel → counters → report) on
        // the engine's pool so every parallel primitive beneath it (Luby
        // matching, prefix sums, compaction, the parallel dictionary) is
        // bounded by `EngineBuilder::threads`.
        let pool = self.pool.clone();
        pool.install(|| run_batch(self, updates))
    }

    /// Processes a pre-validated batch without re-checking legality — the
    /// trusted half of the split `apply_batch` ([`ValidatedBatch`] is the
    /// proof).  Runs on the engine's pool exactly like
    /// [`ParallelDynamicMatching::apply_batch`].
    pub fn apply_batch_trusted(&mut self, batch: ValidatedBatch<'_>) -> BatchReport {
        let pool = self.pool.clone();
        pool.install(|| run_batch_trusted(self, batch))
    }
}

impl BatchKernel for ParallelDynamicMatching {
    /// The §3.3 batch pipeline proper; runs with the engine's pool ambient.
    fn run_kernel(&mut self, updates: &[Update]) -> KernelOutcome {
        let mut rebuilt = false;
        self.state.updates_since_rebuild += updates.len() as u64;

        // §3.2.1: once N more updates have arrived, double N and rebuild.
        if self.state.updates_since_rebuild + self.state.num_vertices() as u64
            > self.state.params.n_bound
        {
            self.rebuild();
            rebuilt = true;
        }

        // Categorize the batch (§3.3): unmatched deletions, matched deletions,
        // temporarily-deleted deletions, insertions.
        self.state.cost.round();
        self.state.cost.work(updates.len() as u64);
        let mut unmatched_deletions: Vec<EdgeId> = Vec::new();
        let mut matched_deletions: Vec<EdgeId> = Vec::new();
        let mut temp_deleted_deletions: Vec<EdgeId> = Vec::new();
        let mut insertions: Vec<HyperEdge> = Vec::new();
        for update in updates {
            match update {
                Update::Insert(edge) => {
                    insertions.push(edge.clone());
                }
                Update::Delete(id) => {
                    let e = self
                        .state
                        .edges
                        .get(id)
                        .expect("validated batch: deletion names a live edge");
                    if e.temp_deleted {
                        temp_deleted_deletions.push(*id);
                    } else if e.matched {
                        matched_deletions.push(*id);
                    } else {
                        unmatched_deletions.push(*id);
                    }
                }
            }
        }
        let num_matched_deletions = matched_deletions.len();
        self.state.metrics.temp_deleted_deletions += temp_deleted_deletions.len() as u64;

        let mut pending_reinsertions: Vec<HyperEdge> = Vec::new();

        // Group 1a: deleting temporarily deleted hyperedges — drop them and credit
        // the deletion to the responsible epoch (its "uninterrupted duration").
        self.state.cost.round();
        for id in temp_deleted_deletions {
            let responsible = self.state.edges[&id].responsible;
            self.state.edges.remove(&id);
            if let Some(resp) = responsible {
                if let Some(resp_state) = self.state.edges.get_mut(&resp) {
                    resp_state.d_deleted_count += 1;
                }
            }
            self.state.cost.work(1);
        }

        // Group 1b: deleting unmatched hyperedges — just unhook them.
        for id in unmatched_deletions {
            self.state.remove_edge_completely(id);
        }

        // Group 2: deleting matched hyperedges — expose their endpoints as
        // undecided, queue their D(·) buckets for re-insertion, then sweep the
        // levels from L down to 0.
        for id in &matched_deletions {
            let level = self.state.edges[id].level;
            let d_deleted = self.state.edges[id].d_deleted_count;
            self.state
                .metrics
                .record_epoch_natural_end(level, d_deleted);
            self.state.unmatch_edge(*id);
            release_bucket_and_remove(&mut self.state, *id, false, &mut pending_reinsertions);
        }
        if !self.state.undecided.is_empty() {
            for level in (0..=self.state.num_levels()).rev() {
                process_level(&mut self.state, level, &mut pending_reinsertions);
            }
        }
        debug_assert!(
            self.state.undecided.is_empty(),
            "all undecided nodes must be resolved by the level sweep"
        );

        // Group 3: insertions — adversary insertions plus algorithm re-insertions.
        insertions.append(&mut pending_reinsertions);
        self.process_insertions(insertions);

        // Optional ablation: also run the rising pass after insertions.
        if self.state.config.settle_after_insert {
            let mut extra_pending: Vec<HyperEdge> = Vec::new();
            for level in (0..=self.state.num_levels()).rev() {
                process_level(&mut self.state, level, &mut extra_pending);
            }
            if !extra_pending.is_empty() {
                self.process_insertions(extra_pending);
            }
        }

        self.state.flush_dirty();
        if self.state.config.check_invariants {
            if let Err(msg) = invariants::check_all(&self.state) {
                panic!("invariant violated after batch: {msg}");
            }
        }

        KernelOutcome {
            matched_deletions: num_matched_deletions,
            rebuilt,
        }
    }

    fn record_batch(&mut self, delta: &UpdateCounters) {
        let metrics = &mut self.state.metrics;
        metrics.batches += delta.batches;
        metrics.updates += delta.updates;
        metrics.insertions += delta.insertions;
        metrics.deletions += delta.deletions;
        metrics.matched_deletions += delta.matched_deletions;
        metrics.rebuilds += delta.rebuilds;
    }
}

impl ParallelDynamicMatching {
    /// §3.3.3: run the static parallel matcher over the inserted hyperedges whose
    /// endpoints are all free, place the newly matched ones (and their nodes) at
    /// level 0, and register every inserted hyperedge with its owner.
    fn process_insertions(&mut self, edges: Vec<HyperEdge>) {
        if edges.is_empty() {
            return;
        }
        self.state.cost.round();
        self.state
            .cost
            .work(edges.iter().map(|e| e.rank() as u64).sum::<u64>());

        let free: Vec<HyperEdge> = edges
            .iter()
            .filter(|e| {
                e.vertices()
                    .iter()
                    .all(|&v| !self.state.is_matched_vertex(v))
            })
            .cloned()
            .collect();
        let mut newly_matched: FxHashSet<EdgeId> = FxHashSet::default();
        if !free.is_empty() {
            let result = luby_maximal_matching(&free, &mut self.state.rng, Some(&self.state.cost));
            self.state.metrics.luby_iterations += result.iterations as u64;
            newly_matched.extend(result.edges);
        }

        // Register matched edges first so that the owner/level computation of the
        // remaining insertions sees the updated (level-0) endpoints.
        for edge in edges.iter().filter(|e| newly_matched.contains(&e.id)) {
            self.state.register_edge(edge, true, 0);
            self.state.metrics.record_epoch_created(0, 0);
        }
        for edge in edges.iter().filter(|e| !newly_matched.contains(&e.id)) {
            self.state.register_edge(edge, false, 0);
        }
    }

    /// §3.2.1: doubles `N`, rebuilds every data structure from scratch, and
    /// recomputes the matching with the static parallel algorithm.  (The
    /// `rebuilds` metric is counted by the shared scaffold via
    /// [`BatchKernel::record_batch`].)
    fn rebuild(&mut self) {
        let needed = self.state.num_vertices() as u64 + self.state.updates_since_rebuild;
        let new_params = self.state.params.doubled(needed);
        let all_edges: Vec<HyperEdge> = self
            .state
            .edges
            .keys()
            .copied()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| HyperEdge::new(id, self.state.edges[&id].vertices.to_vec()))
            .collect();
        let num_vertices = self.state.num_vertices();
        let config = self.state.config.clone();
        // Preserve the RNG stream and accumulated counters across the rebuild.
        let rng = self.state.rng.clone();
        let cost = self.state.cost.clone();
        let metrics = self.state.metrics.clone();

        let mut fresh = MatcherState::new(num_vertices, config);
        fresh.params = new_params;
        fresh.rng = rng;
        fresh.cost = cost;
        fresh.metrics = metrics;
        fresh.metrics.ensure_level(fresh.params.num_levels);
        // Vertex and S-level tables must match the (possibly larger) level count.
        for v in &mut fresh.vertices {
            v.unowned = vec![FxHashSet::default(); fresh.params.num_levels + 1];
        }
        fresh.s_levels = vec![FxHashSet::default(); fresh.params.num_levels + 1];
        self.state = fresh;

        self.state.cost.round();
        self.state
            .cost
            .work(all_edges.iter().map(|e| e.rank() as u64).sum::<u64>());
        let result = luby_maximal_matching(&all_edges, &mut self.state.rng, Some(&self.state.cost));
        self.state.metrics.luby_iterations += result.iterations as u64;
        let matched: FxHashSet<EdgeId> = result.edges.into_iter().collect();
        for edge in all_edges.iter().filter(|e| matched.contains(&e.id)) {
            self.state.register_edge(edge, true, 0);
            self.state.metrics.record_epoch_created(0, 0);
        }
        for edge in all_edges.iter().filter(|e| !matched.contains(&e.id)) {
            self.state.register_edge(edge, false, 0);
        }
        self.state.updates_since_rebuild = 0;
        self.state.flush_dirty();
    }
}

impl MatchingEngine for ParallelDynamicMatching {
    fn name(&self) -> &'static str {
        "parallel-dynamic"
    }

    fn num_vertices(&self) -> usize {
        self.state.num_vertices()
    }

    fn max_rank(&self) -> usize {
        self.state.config.max_rank
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        // Temporarily deleted edges are still live from the adversary's view.
        self.state.edges.contains_key(&id)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchReport, BatchError> {
        ParallelDynamicMatching::apply_batch(self, updates)
    }

    fn apply_batch_trusted(
        &mut self,
        batch: ValidatedBatch<'_>,
    ) -> Result<BatchReport, BatchError> {
        Ok(ParallelDynamicMatching::apply_batch_trusted(self, batch))
    }

    fn matching(&self) -> MatchingIter<'_> {
        MatchingIter::new(self.state.matched_ids())
    }

    fn matching_size(&self) -> usize {
        self.state.matching_size()
    }

    fn verify(&mut self) -> Result<(), String> {
        self.verify_invariants()
    }

    fn metrics(&self) -> EngineMetrics {
        let metrics = &self.state.metrics;
        let cost = self.state.cost.snapshot();
        EngineMetrics {
            batches: metrics.batches,
            updates: metrics.updates,
            insertions: metrics.insertions,
            deletions: metrics.deletions,
            matched_deletions: metrics.matched_deletions,
            work: cost.work,
            depth: cost.depth,
            rebuilds: metrics.rebuilds,
        }
    }

    fn free_vertices(&self) -> Option<Vec<VertexId>> {
        Some(
            (0..self.state.num_vertices() as u32)
                .map(VertexId)
                .filter(|&v| !self.state.is_matched_vertex(v))
                .collect(),
        )
    }

    fn force_match(&mut self, id: EdgeId) -> Result<(), RepairError> {
        let Some(edge) = self.state.edges.get(&id) else {
            return Err(RepairError::UnknownEdge { id });
        };
        if edge.matched {
            return Err(RepairError::AlreadyMatched { id });
        }
        if edge.temp_deleted {
            // Parked in some matched edge's D(·) bucket (Invariant 3.2);
            // matching it would orphan the bucket bookkeeping.
            return Err(RepairError::Parked { id });
        }
        let vertices = edge.vertices.clone();
        if let Some(&v) = vertices.iter().find(|&&v| self.state.is_matched_vertex(v)) {
            return Err(RepairError::EndpointMatched { id, vertex: v });
        }
        // Same route grand-random-settle uses for a level-0 match: raise the
        // endpoints, set M(v) pointers, re-index, then refresh S_ℓ sets.
        self.state.match_edge(id, 0);
        self.state.metrics.record_epoch_created(0, 0);
        self.state.flush_dirty();
        Ok(())
    }

    fn save_state(&self) -> Option<String> {
        persist::save(&self.state)
    }

    fn restore_state(&mut self, blob: &str) -> Result<(), StateError> {
        persist::restore(&mut self.state, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmm_hypergraph::generators::gnm_graph;
    use pdmm_hypergraph::graph::DynamicHypergraph;
    use pdmm_hypergraph::matching::verify_maximality;
    use pdmm_hypergraph::types::UpdateBatch;

    fn pair(id: u64, a: u32, b: u32) -> HyperEdge {
        HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b))
    }

    /// Mirrors the updates into a ground-truth graph and checks maximality of the
    /// algorithm's matching against it after every batch.
    fn run_checked(num_vertices: usize, batches: &[UpdateBatch], config: Config) {
        let mut alg = ParallelDynamicMatching::new(num_vertices, config);
        let mut truth = DynamicHypergraph::new(num_vertices);
        for batch in batches {
            truth.apply_batch(batch);
            alg.apply_batch(batch).expect("valid batch");
            let ids = alg.matching_ids();
            assert_eq!(
                verify_maximality(&truth, &ids),
                Ok(()),
                "batch broke maximality"
            );
            alg.verify_invariants().expect("invariants must hold");
        }
    }

    #[test]
    fn insert_only_batch_matches_greedily() {
        let mut alg = ParallelDynamicMatching::new(6, Config::for_graphs(1));
        let report = alg
            .apply_batch(&[
                Update::Insert(pair(0, 0, 1)),
                Update::Insert(pair(1, 2, 3)),
                Update::Insert(pair(2, 4, 5)),
            ])
            .unwrap();
        assert_eq!(report.batch_size, 3);
        assert_eq!(report.matching_size, 3);
        assert!(report.depth >= 1);
        assert!(report.work >= 3);
        assert_eq!(alg.matching_size(), 3);
        assert_eq!(alg.level_of(VertexId(0)), 0);
    }

    #[test]
    fn delete_unmatched_edge_is_cheap() {
        let mut alg = ParallelDynamicMatching::new(4, Config::for_graphs(2));
        alg.apply_batch(&[Update::Insert(pair(0, 0, 1)), Update::Insert(pair(1, 1, 2))])
            .unwrap();
        assert_eq!(alg.matching_size(), 1);
        // The two edges conflict at vertex 1, so exactly one is matched; delete
        // the *unmatched* one and verify the matching is untouched.
        let matched = alg.matching_ids()[0];
        let unmatched = if matched == EdgeId(0) {
            EdgeId(1)
        } else {
            EdgeId(0)
        };
        let report = alg.apply_batch(&[Update::Delete(unmatched)]).unwrap();
        assert_eq!(report.matched_deletions, 0);
        assert_eq!(alg.matching_size(), 1);
        assert_eq!(alg.matching_ids(), vec![matched]);
    }

    #[test]
    fn delete_matched_edge_restores_maximality() {
        let config = Config::for_graphs(3).with_invariant_checks();
        let batches = vec![
            UpdateBatch::new(vec![
                Update::Insert(pair(0, 0, 1)),
                Update::Insert(pair(1, 1, 2)),
                Update::Insert(pair(2, 2, 3)),
                Update::Insert(pair(3, 3, 4)),
            ])
            .unwrap(),
            UpdateBatch::new(vec![Update::Delete(EdgeId(0))]).unwrap(),
            UpdateBatch::new(vec![Update::Delete(EdgeId(2))]).unwrap(),
        ];
        run_checked(5, &batches, config);
    }

    #[test]
    fn unmatched_vertices_sit_at_level_minus_one() {
        let mut alg =
            ParallelDynamicMatching::new(3, Config::for_graphs(4).with_invariant_checks());
        alg.apply_batch(&[Update::Insert(pair(0, 0, 1))]).unwrap();
        alg.apply_batch(&[Update::Delete(EdgeId(0))]).unwrap();
        assert_eq!(alg.matching_size(), 0);
        assert_eq!(alg.level_of(VertexId(0)), -1);
        assert_eq!(alg.level_of(VertexId(1)), -1);
        assert_eq!(alg.level_of(VertexId(2)), -1);
    }

    #[test]
    fn duplicate_endpoint_insert_and_reinsert_of_same_id_after_delete() {
        let mut alg =
            ParallelDynamicMatching::new(4, Config::for_graphs(5).with_invariant_checks());
        alg.apply_batch(&[Update::Insert(pair(0, 0, 1))]).unwrap();
        alg.apply_batch(&[Update::Delete(EdgeId(0))]).unwrap();
        // The same id may be reused after its deletion.
        alg.apply_batch(&[Update::Insert(pair(0, 2, 3))]).unwrap();
        assert_eq!(alg.matching_size(), 1);
    }

    #[test]
    fn invalid_batches_return_typed_errors_and_change_nothing() {
        let mut alg = ParallelDynamicMatching::new(3, Config::for_graphs(6));
        alg.apply_batch(&[Update::Insert(pair(0, 0, 1))]).unwrap();
        assert_eq!(
            alg.apply_batch(&[Update::Delete(EdgeId(77))]),
            Err(BatchError::UnknownDeletion { id: EdgeId(77) })
        );
        assert_eq!(
            alg.apply_batch(&[Update::Insert(pair(0, 1, 2))]),
            Err(BatchError::DuplicateEdgeId { id: EdgeId(0) })
        );
        assert!(matches!(
            alg.apply_batch(&[Update::Insert(HyperEdge::new(
                EdgeId(5),
                vec![VertexId(0), VertexId(1), VertexId(2)],
            ))]),
            Err(BatchError::RankExceeded { .. })
        ));
        // A rejected batch is rejected atomically: a valid prefix does not leak.
        assert_eq!(
            alg.apply_batch(&[Update::Insert(pair(9, 1, 2)), Update::Delete(EdgeId(42))]),
            Err(BatchError::UnknownDeletion { id: EdgeId(42) })
        );
        assert!(!MatchingEngine::contains_edge(&alg, EdgeId(9)));
        assert_eq!(alg.matching_size(), 1);
        assert_eq!(alg.metrics().batches, 1, "failed batches are not counted");
        alg.verify_invariants().unwrap();
    }

    #[test]
    fn rebuild_triggers_and_preserves_correctness() {
        // Tiny initial capacity forces the N-doubling rule to fire quickly.
        let mut config = Config::for_graphs(7).with_invariant_checks();
        config.initial_update_capacity = 0;
        let mut alg = ParallelDynamicMatching::new(8, config);
        let mut truth = DynamicHypergraph::new(8);
        let edges = gnm_graph(8, 20, 11, 0);
        let mut rebuilt = false;
        for chunk in edges.chunks(4) {
            let batch =
                UpdateBatch::new(chunk.iter().cloned().map(Update::Insert).collect()).unwrap();
            truth.apply_batch(&batch);
            let report = alg.apply_batch(&batch).unwrap();
            rebuilt |= report.rebuilt;
            assert_eq!(verify_maximality(&truth, &alg.matching_ids()), Ok(()));
        }
        assert!(
            rebuilt,
            "expected at least one rebuild with the tiny capacity"
        );
        assert!(alg.metrics().rebuilds >= 1);
    }

    #[test]
    fn batch_report_counts_are_consistent_with_metrics() {
        let mut alg = ParallelDynamicMatching::new(10, Config::for_graphs(8));
        let edges = gnm_graph(10, 15, 3, 0);
        let insert_batch =
            UpdateBatch::new(edges.iter().cloned().map(Update::Insert).collect()).unwrap();
        alg.apply_batch(&insert_batch).unwrap();
        let matched = alg.matching_ids();
        let delete_batch =
            UpdateBatch::new(matched.iter().map(|id| Update::Delete(*id)).collect()).unwrap();
        let report = alg.apply_batch(&delete_batch).unwrap();
        assert_eq!(report.matched_deletions, matched.len());
        assert_eq!(alg.metrics().matched_deletions, matched.len() as u64);
        assert_eq!(alg.metrics().batches, 2);
        assert_eq!(alg.metrics().updates, (edges.len() + matched.len()) as u64);
    }

    /// Save after a prefix, restore into a twin, and drive both through the
    /// tail asserting byte-identical canonical blobs at every batch boundary —
    /// the bit-exactness contract checkpoint recovery is built on.
    fn check_state_roundtrip(rank: usize, seed: u64, churn_seed: u64) {
        let w = pdmm_hypergraph::streams::random_churn(60, rank, 140, 14, 35, 0.5, churn_seed);
        let (prefix, tail) = w.batches.split_at(7);
        let builder = EngineBuilder::new(w.num_vertices).rank(rank).seed(seed);
        let mut a = ParallelDynamicMatching::from_builder(&builder);
        a.apply_all(prefix).unwrap();
        let blob = a.save_state().unwrap();
        // The twin's builder seed is irrelevant: the RNG position is restored
        // wholesale from the blob.
        let mut b =
            ParallelDynamicMatching::from_builder(&EngineBuilder::new(w.num_vertices).rank(rank));
        b.restore_state(&blob).unwrap();
        assert_eq!(b.save_state().unwrap(), blob);
        for batch in tail {
            assert_eq!(a.apply_batch(batch).unwrap(), b.apply_batch(batch).unwrap());
            assert_eq!(a.save_state(), b.save_state());
        }
        b.verify_invariants().expect("restored twin stays sound");
    }

    #[test]
    fn state_roundtrip_continues_bit_identically_on_graphs() {
        check_state_roundtrip(2, 7, 19);
    }

    #[test]
    fn state_roundtrip_continues_bit_identically_on_hypergraphs() {
        check_state_roundtrip(3, 11, 23);
    }

    #[test]
    fn state_roundtrip_survives_a_rebuild_in_the_tail() {
        // A tiny capacity forces the N-doubling rebuild to fire after the
        // restore point, exercising params re-derivation on both sides.
        let edges = gnm_graph(30, 600, 2, 4);
        let builder = EngineBuilder::new(30).rank(2).seed(3).capacity_hint(4);
        let batches: Vec<UpdateBatch> = edges
            .chunks(40)
            .map(|chunk| {
                UpdateBatch::new(chunk.iter().cloned().map(Update::Insert).collect()).unwrap()
            })
            .collect();
        let mut a = ParallelDynamicMatching::from_builder(&builder);
        a.apply_all(&batches[..3]).unwrap();
        let blob = a.save_state().unwrap();
        let mut b = ParallelDynamicMatching::from_builder(&builder);
        b.restore_state(&blob).unwrap();
        let mut rebuilt = false;
        for batch in &batches[3..] {
            let ra = a.apply_batch(batch).unwrap();
            assert_eq!(ra, b.apply_batch(batch).unwrap());
            rebuilt |= ra.rebuilt;
        }
        assert!(rebuilt, "tiny capacity must force a rebuild in the tail");
        assert_eq!(a.save_state(), b.save_state());
    }

    #[test]
    fn restore_rejects_foreign_and_corrupt_blobs() {
        let a = ParallelDynamicMatching::new(10, Config::for_graphs(1));
        let blob = a.save_state().unwrap();
        let mut wrong_n = ParallelDynamicMatching::new(11, Config::for_graphs(1));
        assert!(matches!(
            wrong_n.restore_state(&blob),
            Err(StateError::ConfigMismatch {
                field: "num_vertices",
                ..
            })
        ));
        let mut fresh = ParallelDynamicMatching::new(10, Config::for_graphs(1));
        assert!(matches!(
            fresh.restore_state("engine naive-sequential\n"),
            Err(StateError::EngineMismatch { .. })
        ));
        let mut fresh = ParallelDynamicMatching::new(10, Config::for_graphs(1));
        let truncated = &blob[..blob.len() / 2];
        assert!(matches!(
            fresh.restore_state(truncated),
            Err(StateError::Corrupt { .. })
        ));
        let mut used = ParallelDynamicMatching::new(10, Config::for_graphs(1));
        used.apply_batch(&[Update::Insert(pair(0, 0, 1))]).unwrap();
        assert_eq!(
            used.restore_state(&blob),
            Err(StateError::NotFresh { batches: 1 })
        );
    }
}
