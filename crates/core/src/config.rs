//! Algorithm configuration and the derived leveling parameters of §3.2.1.
//!
//! The leveling scheme uses `α = 4·r` and `L = ⌈log_α N⌉`, where `N` is a
//! constant-approximate upper bound on the number of vertices plus the total number
//! of updates processed so far.  When more than `N` updates accumulate the algorithm
//! doubles `N` and rebuilds from scratch (see `rebuild` in the algorithm module), so
//! `N` — and with it `L` — is a slowly growing quantity.

use pdmm_hypergraph::engine::EngineBuilder;

/// Algorithm-specific configuration of [`crate::ParallelDynamicMatching`].
///
/// Most users configure engines through the engine-agnostic
/// [`EngineBuilder`] (see [`Config::from_builder`]); this struct additionally
/// exposes the ablation knobs of experiment E10 that only the parallel
/// algorithm has.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum rank `r` of any hyperedge that will ever be inserted.
    pub max_rank: usize,
    /// Seed for all algorithm randomness (oblivious-adversary model: the update
    /// stream must be generated independently of this seed).
    pub seed: u64,
    /// Run the rising pass (`process-level` Step 2) after insertion-only batches as
    /// well.  §3.3.3 of the paper does not do this; the flag exists for the ablation
    /// experiment E10.
    pub settle_after_insert: bool,
    /// Replace the parallel `grand-random-settle` by the sequential per-node
    /// `random-settle` of §3.3.2 ("Performing Step 2 in sequential setting").
    /// Used by the ablation experiment E10; the parallel procedure also falls back
    /// to it if it ever fails to converge.
    pub sequential_settle: bool,
    /// Verify the full invariant set (Invariants 3.1, 3.2, 3.5 and maximality)
    /// after every batch.  Expensive (`O(n + m)` per batch); intended for tests.
    pub check_invariants: bool,
    /// Initial guess for the total number of updates; `N` starts at
    /// `2 · (num_vertices + initial_update_capacity)` and doubles on rebuild.
    pub initial_update_capacity: usize,
}

impl Config {
    /// The configuration an [`EngineBuilder`] describes (the canonical way to
    /// configure the engine; the ablation flags default to off).
    #[must_use]
    pub fn from_builder(builder: &EngineBuilder) -> Self {
        Config {
            max_rank: builder.max_rank,
            seed: builder.seed,
            settle_after_insert: false,
            sequential_settle: false,
            check_invariants: builder.check_invariants,
            initial_update_capacity: builder.capacity_hint,
        }
    }

    /// Configuration for ordinary graphs (rank 2) with the given seed.
    #[must_use]
    pub fn for_graphs(seed: u64) -> Self {
        Config {
            max_rank: 2,
            seed,
            settle_after_insert: false,
            sequential_settle: false,
            check_invariants: false,
            initial_update_capacity: 0,
        }
    }

    /// Configuration for hypergraphs of rank at most `max_rank`.
    #[must_use]
    pub fn for_hypergraphs(max_rank: usize, seed: u64) -> Self {
        Config {
            max_rank,
            seed,
            settle_after_insert: false,
            sequential_settle: false,
            check_invariants: false,
            initial_update_capacity: 0,
        }
    }

    /// Enables per-batch invariant checking (used by the test suite).
    #[must_use]
    pub fn with_invariant_checks(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Enables the post-insertion rising pass (ablation E10).
    #[must_use]
    pub fn with_settle_after_insert(mut self) -> Self {
        self.settle_after_insert = true;
        self
    }

    /// Uses the sequential per-node `random-settle` instead of the parallel
    /// `grand-random-settle` (ablation E10).
    #[must_use]
    pub fn with_sequential_settle(mut self) -> Self {
        self.sequential_settle = true;
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::for_graphs(0)
    }
}

/// The derived leveling parameters: `α`, `N`, and `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelingParams {
    /// `α = 4·r`.
    pub alpha: u64,
    /// Current bound `N` on vertices plus updates.
    pub n_bound: u64,
    /// Number of levels `L = ⌈log_α N⌉`; vertex levels live in `-1..=L`.
    pub num_levels: usize,
}

impl LevelingParams {
    /// Computes the parameters for rank `max_rank` and bound `n_bound`.
    #[must_use]
    pub fn new(max_rank: usize, n_bound: u64) -> Self {
        let alpha = 4 * max_rank.max(1) as u64;
        let n_bound = n_bound.max(2);
        LevelingParams {
            alpha,
            n_bound,
            num_levels: ceil_log(n_bound, alpha),
        }
    }

    /// `α^ℓ`, saturating at `u64::MAX` (levels are small, so this rarely saturates).
    #[must_use]
    pub fn alpha_pow(&self, level: usize) -> u64 {
        self.alpha.saturating_pow(level as u32)
    }

    /// Doubles `N` (used on rebuild) and recomputes `L`.
    #[must_use]
    pub fn doubled(&self, at_least: u64) -> Self {
        let mut n = self.n_bound;
        while n < at_least {
            n = n.saturating_mul(2);
        }
        LevelingParams::new((self.alpha / 4) as usize, n.saturating_mul(2))
    }
}

/// `⌈log_base(n)⌉` for `n ≥ 1`, `base ≥ 2`.
fn ceil_log(n: u64, base: u64) -> usize {
    debug_assert!(base >= 2);
    let mut levels = 0usize;
    let mut value = 1u64;
    while value < n {
        value = value.saturating_mul(base);
        levels += 1;
    }
    levels.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_config_defaults() {
        let c = Config::for_graphs(7);
        assert_eq!(c.max_rank, 2);
        assert_eq!(c.seed, 7);
        assert!(!c.settle_after_insert);
        assert!(!c.check_invariants);
        let c = c.with_invariant_checks().with_settle_after_insert();
        assert!(c.settle_after_insert);
        assert!(c.check_invariants);
    }

    #[test]
    fn leveling_params_basic() {
        let p = LevelingParams::new(2, 4096);
        assert_eq!(p.alpha, 8);
        assert_eq!(p.num_levels, 4); // 8^4 = 4096
        assert_eq!(p.alpha_pow(0), 1);
        assert_eq!(p.alpha_pow(3), 512);
    }

    #[test]
    fn ceil_log_edge_cases() {
        assert_eq!(ceil_log(1, 8), 1);
        assert_eq!(ceil_log(2, 8), 1);
        assert_eq!(ceil_log(8, 8), 1);
        assert_eq!(ceil_log(9, 8), 2);
        assert_eq!(ceil_log(64, 8), 2);
        assert_eq!(ceil_log(65, 8), 3);
    }

    #[test]
    fn hypergraph_alpha_scales_with_rank() {
        let p = LevelingParams::new(5, 1000);
        assert_eq!(p.alpha, 20);
        assert!(p.num_levels >= 2);
    }

    #[test]
    fn doubling_grows_bound() {
        let p = LevelingParams::new(2, 100);
        let q = p.doubled(100);
        assert!(q.n_bound >= 200);
        assert!(q.num_levels >= p.num_levels);
        let big = p.doubled(10_000);
        assert!(big.n_bound >= 20_000);
    }

    #[test]
    fn alpha_pow_saturates() {
        let p = LevelingParams::new(2, 1 << 40);
        assert_eq!(p.alpha_pow(64), u64::MAX);
    }
}
