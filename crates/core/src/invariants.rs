//! Structural invariant checking (Invariants 3.1, 3.2 and maximality).
//!
//! These checks are `O(n·L + Σ_e r)` per call and are used by the test suite (and by
//! [`crate::Config::check_invariants`]) after every batch:
//!
//! * **Invariant 3.1** — levels: `ℓ(e) ∈ [0, L]`, `ℓ(v) ∈ [-1, L]` with
//!   `ℓ(v) = -1` iff `v` is unmatched; matched edges have all endpoints at their
//!   level; unmatched edges sit at the maximum level of their endpoints.
//! * **Invariant 3.2** — every temporarily deleted edge is incident on a matched
//!   edge (in fact on the matched edge responsible for it).
//! * **Maximality** — every live, non-temporarily-deleted edge has a matched
//!   endpoint, and matched edges are pairwise disjoint.
//! * **Structure consistency** — the `O(v)` / `A(v,ℓ)` tables and the `S_ℓ` sets
//!   agree exactly with the edge records.

use crate::state::MatcherState;
use pdmm_hypergraph::types::{EdgeId, VertexId};
use rustc_hash::{FxHashMap, FxHashSet};

/// Runs every invariant check; returns the first violation found.
pub(crate) fn check_all(state: &MatcherState) -> Result<(), String> {
    check_levels(state)?;
    check_matching(state)?;
    check_temp_deleted(state)?;
    check_structures(state)?;
    check_s_levels(state)?;
    Ok(())
}

/// Invariant 3.1: level ranges and the level rules for matched/unmatched edges.
fn check_levels(state: &MatcherState) -> Result<(), String> {
    let num_levels = state.num_levels() as i32;
    for (i, vs) in state.vertices.iter().enumerate() {
        if vs.level < -1 || vs.level > num_levels {
            return Err(format!(
                "vertex v{i} has level {} outside [-1, {num_levels}]",
                vs.level
            ));
        }
        match (vs.level == -1, vs.matched_edge.is_none()) {
            (true, false) => {
                return Err(format!("vertex v{i} is matched but sits at level -1"));
            }
            (false, true) => {
                return Err(format!(
                    "vertex v{i} is unmatched but sits at level {}",
                    vs.level
                ));
            }
            _ => {}
        }
    }
    for (id, e) in &state.edges {
        if e.temp_deleted {
            continue;
        }
        if e.level > state.num_levels() {
            return Err(format!("edge {id} has level {} above L", e.level));
        }
        if e.matched {
            for &v in e.vertices.iter() {
                if state.level_of(v) != e.level as i32 {
                    return Err(format!(
                        "matched edge {id} at level {} has endpoint {v} at level {}",
                        e.level,
                        state.level_of(v)
                    ));
                }
            }
        } else {
            let max_level = e
                .vertices
                .iter()
                .map(|&v| state.level_of(v))
                .max()
                .unwrap_or(-1);
            if e.level as i32 != max_level.max(0) {
                return Err(format!(
                    "unmatched edge {id} has level {} but max endpoint level is {max_level}",
                    e.level
                ));
            }
            let owner_level = state.level_of(e.owner);
            if owner_level != max_level {
                return Err(format!(
                    "edge {id} is owned by {} at level {owner_level}, not a maximum-level endpoint ({max_level})",
                    e.owner
                ));
            }
        }
        if !e.vertices.contains(&e.owner) {
            return Err(format!("edge {id} is owned by non-endpoint {}", e.owner));
        }
    }
    Ok(())
}

/// Matching validity (disjointness, pointer consistency) and maximality.
fn check_matching(state: &MatcherState) -> Result<(), String> {
    let mut covered: FxHashMap<VertexId, EdgeId> = FxHashMap::default();
    for (id, e) in &state.edges {
        if !e.matched {
            continue;
        }
        if e.temp_deleted {
            return Err(format!("matched edge {id} is also temporarily deleted"));
        }
        for &v in e.vertices.iter() {
            if let Some(other) = covered.insert(v, *id) {
                return Err(format!("vertex {v} is covered by both {other} and {id}"));
            }
            if state.vertices[v.index()].matched_edge != Some(*id) {
                return Err(format!(
                    "vertex {v} does not point back at its matched edge {id}"
                ));
            }
        }
    }
    for (i, vs) in state.vertices.iter().enumerate() {
        if let Some(m) = vs.matched_edge {
            match state.edges.get(&m) {
                None => return Err(format!("vertex v{i} points at missing matched edge {m}")),
                Some(e) if !e.matched => {
                    return Err(format!("vertex v{i} points at unmatched edge {m}"))
                }
                Some(e) if !e.vertices.contains(&VertexId(i as u32)) => {
                    return Err(format!(
                        "vertex v{i} points at edge {m} that does not contain it"
                    ))
                }
                _ => {}
            }
        }
    }
    // Maximality over every live, non-temporarily-deleted edge.
    for (id, e) in &state.edges {
        if e.temp_deleted || e.matched {
            continue;
        }
        if e.vertices.iter().all(|&v| !covered.contains_key(&v)) {
            return Err(format!(
                "matching is not maximal: edge {id} has no matched endpoint"
            ));
        }
    }
    Ok(())
}

/// Invariant 3.2: temporarily deleted edges are incident on their (matched)
/// responsible edge.
fn check_temp_deleted(state: &MatcherState) -> Result<(), String> {
    for (id, e) in &state.edges {
        if !e.temp_deleted {
            continue;
        }
        let Some(resp_id) = e.responsible else {
            return Err(format!("temp-deleted edge {id} has no responsible edge"));
        };
        let Some(resp) = state.edges.get(&resp_id) else {
            return Err(format!(
                "temp-deleted edge {id} is responsible to missing edge {resp_id}"
            ));
        };
        if !resp.matched {
            return Err(format!(
                "temp-deleted edge {id} is responsible to unmatched edge {resp_id}"
            ));
        }
        let shares_vertex = e.vertices.iter().any(|v| resp.vertices.contains(v));
        if !shares_vertex {
            return Err(format!(
                "temp-deleted edge {id} is not incident on its responsible edge {resp_id}"
            ));
        }
        if !resp.bucket.contains(id) {
            return Err(format!(
                "temp-deleted edge {id} is missing from D({resp_id})"
            ));
        }
    }
    Ok(())
}

/// The `O(v)` / `A(v, ℓ)` tables agree exactly with the edge records.
fn check_structures(state: &MatcherState) -> Result<(), String> {
    // Every live, non-temp-deleted edge appears exactly where it should.
    for (id, e) in &state.edges {
        if e.temp_deleted {
            // Temp-deleted edges must not appear in any vertex structure.
            for (i, vs) in state.vertices.iter().enumerate() {
                if vs.owned.contains(id) || vs.unowned.iter().any(|b| b.contains(id)) {
                    return Err(format!("temp-deleted edge {id} still referenced by v{i}"));
                }
            }
            continue;
        }
        for &v in e.vertices.iter() {
            let vs = &state.vertices[v.index()];
            if v == e.owner {
                if !vs.owned.contains(id) {
                    return Err(format!("edge {id} missing from O({v})"));
                }
            } else {
                if !vs.unowned[e.level].contains(id) {
                    return Err(format!("edge {id} missing from A({v}, {})", e.level));
                }
                if vs.owned.contains(id) {
                    return Err(format!("edge {id} wrongly present in O({v})"));
                }
            }
        }
    }
    // No vertex structure references a dead or out-of-place edge.
    let mut referenced: FxHashSet<(usize, EdgeId)> = FxHashSet::default();
    for (i, vs) in state.vertices.iter().enumerate() {
        for id in &vs.owned {
            referenced.insert((i, *id));
            match state.edges.get(id) {
                None => return Err(format!("O(v{i}) references dead edge {id}")),
                Some(e) if e.owner != VertexId(i as u32) => {
                    return Err(format!("O(v{i}) contains edge {id} owned by {}", e.owner))
                }
                _ => {}
            }
        }
        for (level, bucket) in vs.unowned.iter().enumerate() {
            for id in bucket {
                referenced.insert((i, *id));
                match state.edges.get(id) {
                    None => return Err(format!("A(v{i}, {level}) references dead edge {id}")),
                    Some(e) if e.level != level => {
                        return Err(format!(
                            "A(v{i}, {level}) contains edge {id} whose level is {}",
                            e.level
                        ))
                    }
                    Some(e) if !e.vertices.contains(&VertexId(i as u32)) => {
                        return Err(format!(
                            "A(v{i}, {level}) contains edge {id} not incident on v{i}"
                        ))
                    }
                    _ => {}
                }
            }
        }
    }
    // Conversely, every incidence of a live edge is referenced exactly once.
    for (id, e) in &state.edges {
        if e.temp_deleted {
            continue;
        }
        for &v in e.vertices.iter() {
            if !referenced.contains(&(v.index(), *id)) {
                return Err(format!("incidence ({v}, {id}) is not indexed anywhere"));
            }
        }
    }
    Ok(())
}

/// The `S_ℓ` sets agree with the definition of §3.2.3 (requires `flush_dirty` to
/// have run, which [`crate::ParallelDynamicMatching::verify_invariants`] ensures).
fn check_s_levels(state: &MatcherState) -> Result<(), String> {
    for level in 0..=state.num_levels() {
        let threshold = state.params.alpha_pow(level);
        for i in 0..state.num_vertices() {
            let v = VertexId(i as u32);
            let should =
                (state.level_of(v) as i64) < level as i64 && state.o_tilde(v, level) >= threshold;
            let is = state.s_levels[level].contains(&v);
            if should != is {
                return Err(format!(
                    "S_{level} disagrees for {v}: stored {is}, expected {should} \
                     (level {}, õ {})",
                    state.level_of(v),
                    state.o_tilde(v, level)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use pdmm_hypergraph::types::HyperEdge;

    fn edge(id: u64, vs: &[u32]) -> HyperEdge {
        HyperEdge::new(EdgeId(id), vs.iter().map(|&i| VertexId(i)).collect())
    }

    #[test]
    fn empty_state_satisfies_all_invariants() {
        let mut s = MatcherState::new(5, Config::for_graphs(0));
        s.flush_dirty();
        assert_eq!(check_all(&s), Ok(()));
    }

    #[test]
    fn healthy_small_state_passes() {
        let mut s = MatcherState::new(4, Config::for_graphs(1));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.register_edge(&edge(1, &[1, 2]), false, 0);
        s.match_edge(EdgeId(0), 0);
        s.flush_dirty();
        assert_eq!(check_all(&s), Ok(()));
    }

    #[test]
    fn detects_non_maximal_matching() {
        let mut s = MatcherState::new(4, Config::for_graphs(2));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.register_edge(&edge(1, &[2, 3]), false, 0);
        s.match_edge(EdgeId(0), 0);
        s.flush_dirty();
        let err = check_all(&s).unwrap_err();
        assert!(err.contains("not maximal"), "unexpected error: {err}");
    }

    #[test]
    fn detects_undecided_vertex_left_behind() {
        let mut s = MatcherState::new(2, Config::for_graphs(3));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.match_edge(EdgeId(0), 1);
        // Unmatching without running the level sweep leaves the endpoints at level
        // 1 while unmatched — exactly what Invariant 3.1(1) forbids.
        s.unmatch_edge(EdgeId(0));
        s.flush_dirty();
        let err = check_all(&s).unwrap_err();
        assert!(
            err.contains("unmatched but sits at level"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn detects_stale_level_bucket() {
        let mut s = MatcherState::new(3, Config::for_graphs(4));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.register_edge(&edge(1, &[1, 2]), false, 0);
        s.match_edge(EdgeId(0), 0);
        // Corrupt the state: claim the unmatched edge sits at level 2 without
        // moving it between buckets.
        s.edges.get_mut(&EdgeId(1)).unwrap().level = 2;
        s.flush_dirty();
        assert!(check_all(&s).is_err());
    }

    #[test]
    fn detects_orphaned_temp_deletion() {
        let mut s = MatcherState::new(4, Config::for_graphs(5));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.register_edge(&edge(1, &[1, 2]), false, 0);
        s.match_edge(EdgeId(0), 0);
        s.temp_delete_edge(EdgeId(1), EdgeId(0));
        // Forcibly unmatch the responsible edge: Invariant 3.2 is now violated
        // because the temp-deleted edge hangs off an unmatched edge.
        s.edges.get_mut(&EdgeId(0)).unwrap().matched = false;
        s.vertices[0].matched_edge = None;
        s.vertices[1].matched_edge = None;
        s.vertices[0].level = -1;
        s.vertices[1].level = -1;
        s.flush_dirty();
        // Several invariants are now broken (maximality, 3.1(1), 3.2); the checker
        // must flag the state as invalid whichever it reports first.
        assert!(check_all(&s).is_err());
    }
}
