//! `process-level` and the settle procedures (§3.3.2 of the paper).
//!
//! When matched hyperedges disappear, the algorithm sweeps the levels from `L` down
//! to `0`; at each level `ℓ`, [`process_level`] establishes Invariant 3.5:
//!
//! 1. **Step 1** — the *undecided* nodes at level `ℓ` (nodes whose matched edge
//!    vanished) are resolved: a static maximal matching (Theorem 2.2) is computed on
//!    the free hyperedges they own, newly matched hyperedges drop to level `0`, and
//!    nodes that remain unmatched drop to level `-1`.
//! 2. **Step 2** — nodes `v` with `ℓ(v) < ℓ` whose prospective ownership
//!    `õ_{v,ℓ}` reaches `α^ℓ` are raised.  Sequentially this is `random-settle`
//!    (raise one node, sample one of its owned edges into the matching, park the
//!    rest in `D(e)`); in parallel it is `grand-random-settle`: repeated rounds of
//!    random edge marking at geometrically increasing probabilities
//!    (`grand-random-subsubsettle`), where isolated marked edges join the matching
//!    at level `ℓ`, edges whose random representative `h(e)` lies on a newly matched
//!    edge are temporarily deleted into its `D(·)`, and the working set `B` shrinks
//!    until every original node either reached level `ℓ` or lost half its
//!    prospective ownership.

use crate::state::MatcherState;
use pdmm_hypergraph::types::{EdgeId, HyperEdge, VertexId};
use pdmm_static::luby::luby_maximal_matching;
use rustc_hash::{FxHashMap, FxHashSet};

/// Safety valve: if `grand-random-settle` has not converged after this many
/// `grand-random-subsettle` repetitions (an event of vanishing probability,
/// Lemma 4.3), the remaining nodes are handled by the sequential `random-settle`,
/// which terminates deterministically.
const MAX_OUTER_REPEATS: usize = 512;

/// Runs `process-level(ℓ)` (§3.3.2), appending algorithm-induced re-insertions
/// (kicked-out matched edges and the contents of their `D(·)` buckets) to
/// `pending_reinsertions`.
pub(crate) fn process_level(
    state: &mut MatcherState,
    level: usize,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    state.metrics.levels_processed += 1;
    step1_resolve_undecided(state, level);
    step2_raise_nodes(state, level, pending_reinsertions);
}

/// Step 1: resolve every undecided node at exactly this level.
fn step1_resolve_undecided(state: &mut MatcherState, level: usize) {
    let undecided_here: Vec<VertexId> = state
        .undecided
        .iter()
        .copied()
        .filter(|v| state.level_of(*v) == level as i32)
        .collect();
    if undecided_here.is_empty() {
        return;
    }
    state.cost.round();
    state.cost.work(undecided_here.len() as u64);

    // U_free: hyperedges owned by an undecided node at this level, all of whose
    // endpoints are currently unmatched.
    let mut seen: FxHashSet<EdgeId> = FxHashSet::default();
    let mut u_free: Vec<HyperEdge> = Vec::new();
    for &v in &undecided_here {
        for &eid in &state.vertices[v.index()].owned {
            if !seen.insert(eid) {
                continue;
            }
            let e = &state.edges[&eid];
            if !e.matched && e.vertices.iter().all(|&w| !state.is_matched_vertex(w)) {
                u_free.push(HyperEdge::new(eid, e.vertices.to_vec()));
            }
        }
    }
    state
        .cost
        .work(u_free.iter().map(|e| e.rank() as u64).sum::<u64>());

    // Static maximal matching on the free edges (Theorem 2.2); newly matched
    // hyperedges and their nodes drop to level 0.
    if !u_free.is_empty() {
        let result = luby_maximal_matching(&u_free, &mut state.rng, Some(&state.cost));
        state.metrics.luby_iterations += result.iterations as u64;
        for eid in result.edges {
            state.match_edge(eid, 0);
            state.metrics.record_epoch_created(0, 0);
        }
    }

    // Undecided nodes at this level that are still unmatched drop to level -1.
    let still_undecided: Vec<VertexId> = state
        .undecided
        .iter()
        .copied()
        .filter(|v| state.level_of(*v) == level as i32 && !state.is_matched_vertex(*v))
        .collect();
    state.cost.round();
    for v in still_undecided {
        state.set_vertex_level(v, -1);
        state.undecided.remove(&v);
    }
}

/// Step 2: raise the nodes of `S_ℓ` (or settle them sequentially under the
/// ablation configuration).
fn step2_raise_nodes(
    state: &mut MatcherState,
    level: usize,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    state.flush_dirty();
    let threshold_full = state.params.alpha_pow(level);
    let mut b: Vec<VertexId> = state.s_levels[level]
        .iter()
        .copied()
        .filter(|&v| state.level_of(v) < level as i32 && state.o_tilde(v, level) >= threshold_full)
        .collect();
    // Canonical order, for the same reason as in `random_settle_one`: the
    // sequential-settle path visits these nodes in turn, and its outcome must
    // be a function of the set, not of `s_levels` hash-iteration order.
    b.sort_unstable();
    if b.is_empty() {
        return;
    }
    if state.config.sequential_settle {
        sequential_settle_all(state, b, level, pending_reinsertions);
    } else {
        grand_random_settle(state, b, level, pending_reinsertions);
    }
}

/// `grand-random-settle(B, ℓ)`: repeats `grand-random-subsettle` until every node of
/// `B` has either reached level `ℓ` or seen its prospective ownership drop below
/// `α^ℓ / 2`.
pub(crate) fn grand_random_settle(
    state: &mut MatcherState,
    initial_b: Vec<VertexId>,
    level: usize,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    state.metrics.settle_invocations += 1;
    let alpha = state.params.alpha;
    let threshold_half = (state.params.alpha_pow(level) / 2).max(1);
    // 2·⌈log₂ α⌉ phases per subsettle (the paper's 2·log α with base-2 logs).
    let num_phases = 2 * ceil_log2(alpha).max(1);
    // One random representative h(e) per edge, fixed for the whole invocation.
    let h_phase = state.rng.next_phase();

    let mut b: Vec<VertexId> = initial_b;
    let mut outer = 0usize;
    while !b.is_empty() {
        outer += 1;
        if outer > MAX_OUTER_REPEATS {
            // Vanishingly unlikely (Lemma 4.3); finish deterministically.
            sequential_settle_all(state, b, level, pending_reinsertions);
            return;
        }
        state.metrics.settle_outer_repeats += 1;

        // One grand-random-subsettle: `num_phases` phases of O(log |E'|) iterations.
        'phases: for i in 1..=num_phases {
            let eprime_size = current_eprime(state, &b, level).len();
            if eprime_size == 0 {
                prune_b(state, &mut b, level, threshold_half);
                if b.is_empty() {
                    return;
                }
                continue 'phases;
            }
            let iterations = ceil_log2(eprime_size as u64).max(1) + 1;
            for _ in 0..iterations {
                subsubsettle(
                    state,
                    &mut b,
                    level,
                    i,
                    h_phase,
                    threshold_half,
                    pending_reinsertions,
                );
                if b.is_empty() {
                    return;
                }
            }
        }
    }
}

/// One iteration of `grand-random-subsubsettle(B, ℓ, i)`.
fn subsubsettle(
    state: &mut MatcherState,
    b: &mut Vec<VertexId>,
    level: usize,
    phase_index: usize,
    h_phase: pdmm_primitives::random::PhaseRandom,
    threshold_half: u64,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    state.cost.round();
    state.metrics.settle_iterations += 1;

    let eprime = current_eprime(state, b, level);
    state.cost.work(eprime.len() as u64);
    if eprime.is_empty() {
        prune_b(state, b, level, threshold_half);
        return;
    }

    // 1. Mark each edge of E' independently with probability p = 2^i / α^{ℓ+2}.
    let p = (2f64.powi(phase_index as i32) / (state.params.alpha as f64).powi(level as i32 + 2))
        .min(1.0);
    let mark_phase = state.rng.next_phase();
    let marked: FxHashSet<EdgeId> = eprime
        .iter()
        .copied()
        .filter(|eid| mark_phase.bernoulli(eid.0, p))
        .collect();
    if marked.is_empty() {
        prune_b(state, b, level, threshold_half);
        return;
    }

    // 2. Select the marked edges with no incident marked edge: count marked edges
    //    per vertex; an edge is isolated iff it is the unique marked edge at each of
    //    its endpoints.
    let mut marked_per_vertex: FxHashMap<VertexId, u32> = FxHashMap::default();
    for eid in &marked {
        for &v in state.edges[eid].vertices.iter() {
            *marked_per_vertex.entry(v).or_insert(0) += 1;
        }
    }
    let selected: Vec<EdgeId> = marked
        .iter()
        .copied()
        .filter(|eid| {
            state.edges[eid]
                .vertices
                .iter()
                .all(|v| marked_per_vertex[v] == 1)
        })
        .collect();
    state.cost.work(marked.len() as u64);

    if !selected.is_empty() {
        // 3. Lift every selected edge to level ℓ and add it to the matching,
        //    kicking out lower-level matched edges of its endpoints.
        let mut selected_vertex_owner: FxHashMap<VertexId, EdgeId> = FxHashMap::default();
        for &eid in &selected {
            let verts = state.edges[&eid].vertices.clone();
            for &u in verts.iter() {
                if let Some(old) = state.vertices[u.index()].matched_edge {
                    kick_matched_edge(state, old, pending_reinsertions);
                }
            }
            state.match_edge(eid, level);
            for &u in verts.iter() {
                selected_vertex_owner.insert(u, eid);
            }
        }

        // 4. Temporarily delete every *non-marked* edge of E' whose representative
        //    h(e') landed on a newly matched edge, into that edge's D(·).
        for &eid in &eprime {
            if marked.contains(&eid) {
                continue;
            }
            let Some(e) = state.edges.get(&eid) else {
                continue;
            };
            if e.matched || e.temp_deleted {
                continue;
            }
            let verts = &e.vertices;
            let rep = verts[h_phase.uniform_below(eid.0, verts.len() as u64) as usize];
            if let Some(&owner) = selected_vertex_owner.get(&rep) {
                state.temp_delete_edge(eid, owner);
            }
        }

        // Record the epochs now that their D(·) buckets are filled.
        for &eid in &selected {
            let d_size = state.edges[&eid].bucket.len() as u64;
            state.metrics.record_epoch_created(level, d_size);
        }
    }

    // 5. Shrink B: keep only nodes still below the level whose prospective
    //    ownership is at least α^ℓ / 2.
    prune_b(state, b, level, threshold_half);
}

/// Recomputes `E' = ∪_{v ∈ B} Õ_{v,ℓ}`, excluding matched and temporarily deleted
/// edges (a node's only matched incident edge is its own `M(v)`, so this differs
/// from the paper's set by at most one edge per node of `B`).
fn current_eprime(state: &MatcherState, b: &[VertexId], level: usize) -> Vec<EdgeId> {
    let mut seen: FxHashSet<EdgeId> = FxHashSet::default();
    let mut out = Vec::new();
    for &v in b {
        for eid in state.prospective_owned(v, level) {
            if seen.insert(eid) {
                let e = &state.edges[&eid];
                if !e.matched && !e.temp_deleted {
                    out.push(eid);
                }
            }
        }
    }
    out
}

/// Removes from `B` every node that reached the level or whose prospective
/// ownership dropped below the threshold.
fn prune_b(state: &mut MatcherState, b: &mut Vec<VertexId>, level: usize, threshold: u64) {
    state.flush_dirty();
    b.retain(|&v| state.level_of(v) < level as i32 && state.o_tilde(v, level) >= threshold);
}

/// Removes a matched edge from the matching because a higher-level edge claimed one
/// of its endpoints (an *induced* epoch termination, §4.2.3): the edge and the
/// contents of its `D(·)` bucket are re-inserted at the end of the batch.
pub(crate) fn kick_matched_edge(
    state: &mut MatcherState,
    edge_id: EdgeId,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    let level = state.edges[&edge_id].level;
    state.metrics.record_epoch_induced_end(level);
    state.unmatch_edge(edge_id);
    release_bucket_and_remove(state, edge_id, true, pending_reinsertions);
}

/// Drains the `D(edge_id)` bucket into `pending_reinsertions` and removes the edge
/// from the state.  When `reinsert_self` is set the edge itself is also queued for
/// re-insertion (kick case); adversary deletions do not re-insert the edge.
pub(crate) fn release_bucket_and_remove(
    state: &mut MatcherState,
    edge_id: EdgeId,
    reinsert_self: bool,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    let bucket = std::mem::take(&mut state.edges.get_mut(&edge_id).expect("edge exists").bucket);
    for tid in bucket {
        // The bucket may contain ids that the adversary has since deleted; only
        // edges that still exist, are still temporarily deleted, and still name
        // this edge as responsible are revived.
        let still_ours = state
            .edges
            .get(&tid)
            .map(|t| t.temp_deleted && t.responsible == Some(edge_id))
            .unwrap_or(false);
        if still_ours {
            let st = state.remove_edge_completely(tid);
            pending_reinsertions.push(HyperEdge::new(tid, st.vertices.to_vec()));
            state.metrics.reinsertions += 1;
        }
    }
    let st = state.remove_edge_completely(edge_id);
    if reinsert_self {
        pending_reinsertions.push(HyperEdge::new(edge_id, st.vertices.to_vec()));
        state.metrics.reinsertions += 1;
    }
}

/// The sequential `random-settle(v, ℓ)` of §3.3.2, applied to every node of `b`
/// in turn.  Used for the E10 ablation and as the deterministic fallback of
/// [`grand_random_settle`].
pub(crate) fn sequential_settle_all(
    state: &mut MatcherState,
    b: Vec<VertexId>,
    level: usize,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    let threshold_full = state.params.alpha_pow(level);
    for v in b {
        state.flush_dirty();
        if state.level_of(v) >= level as i32 || state.o_tilde(v, level) < threshold_full {
            continue;
        }
        random_settle_one(state, v, level, pending_reinsertions);
    }
    state.flush_dirty();
}

/// `random-settle(v, ℓ)`: raise `v` to level `ℓ`, sample one of the hyperedges it
/// now owns uniformly at random into the matching, and temporarily delete the rest
/// of its owned edges into the new matched edge's `D(·)`.
pub(crate) fn random_settle_one(
    state: &mut MatcherState,
    v: VertexId,
    level: usize,
    pending_reinsertions: &mut Vec<HyperEdge>,
) {
    state.cost.round();
    let old_level = state.level_of(v);
    state.set_vertex_level(v, level as i32);
    // Candidate edges: everything v now owns that is not matched (its own matched
    // edge, if any, is about to be kicked) and not temporarily deleted.
    let mut candidates: Vec<EdgeId> = state.vertices[v.index()]
        .owned
        .iter()
        .copied()
        .filter(|eid| {
            let e = &state.edges[eid];
            !e.matched && !e.temp_deleted
        })
        .collect();
    // Canonical order: the random pick below must depend only on the candidate
    // *set* and the RNG position, never on hash-set iteration order, so that a
    // checkpoint-restored run makes the same choices as an uninterrupted one.
    candidates.sort_unstable();
    state.cost.work(candidates.len() as u64 + 1);
    if candidates.is_empty() {
        // Nothing to sample (can only happen for degenerate inputs): undo the level
        // change so Invariant 3.1(1) is not violated for an unmatched vertex.
        state.set_vertex_level(v, old_level);
        return;
    }
    let pick = candidates[state.rng.uniform_below(candidates.len() as u64) as usize];

    // Kick the current matched edges of the chosen edge's endpoints, then match.
    let verts = state.edges[&pick].vertices.clone();
    for &u in verts.iter() {
        if let Some(old) = state.vertices[u.index()].matched_edge {
            kick_matched_edge(state, old, pending_reinsertions);
        }
    }
    state.match_edge(pick, level);

    // Park every other candidate in D(pick).
    for eid in candidates {
        if eid == pick {
            continue;
        }
        let still_live = state
            .edges
            .get(&eid)
            .map(|e| !e.matched && !e.temp_deleted)
            .unwrap_or(false);
        if still_live {
            state.temp_delete_edge(eid, pick);
        }
    }
    let d_size = state.edges[&pick].bucket.len() as u64;
    state.metrics.record_epoch_created(level, d_size);
}

/// `⌈log₂ n⌉` for `n ≥ 1`.
fn ceil_log2(n: u64) -> usize {
    if n <= 1 {
        0
    } else {
        (64 - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn edge(id: u64, vs: &[u32]) -> HyperEdge {
        HyperEdge::new(EdgeId(id), vs.iter().map(|&i| VertexId(i)).collect())
    }

    /// A state with one hub vertex owning `fan` pendant edges.
    fn hub_state(fan: u64) -> MatcherState {
        let mut s = MatcherState::new(fan as usize + 1, Config::for_graphs(3));
        for i in 0..fan {
            s.register_edge(&edge(i, &[0, 1 + i as u32]), false, 0);
        }
        s.flush_dirty();
        s
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn grand_random_settle_raises_hub() {
        // α = 8, so a hub prospectively owning 20 edges qualifies for level 1.
        let mut s = hub_state(20);
        assert!(s.s_levels[1].contains(&v(0)));
        let mut pending = Vec::new();
        let b: Vec<VertexId> = s.s_levels[1].iter().copied().collect();
        grand_random_settle(&mut s, b, 1, &mut pending);
        s.flush_dirty();
        // The postcondition of the procedure: the hub either reached level 1 or its
        // prospective ownership fell below α/2 = 4.
        let ok = s.level_of(v(0)) == 1 || s.o_tilde(v(0), 1) < 4;
        assert!(
            ok,
            "postcondition violated: level {}, õ {}",
            s.level_of(v(0)),
            s.o_tilde(v(0), 1)
        );
        // At least one matched edge at level 1 must exist (Lemma 4.6 with |B| = 1).
        let matched_at_1 = s
            .edges
            .values()
            .filter(|e| e.matched && e.level == 1)
            .count();
        assert!(matched_at_1 >= 1);
        // Every temporarily deleted edge is incident to its responsible matched edge.
        for e in s.edges.values() {
            if e.temp_deleted {
                let resp = &s.edges[&e.responsible.unwrap()];
                assert!(resp.matched);
            }
        }
        assert_eq!(s.metrics.settle_invocations, 1);
        assert!(s.metrics.settle_iterations >= 1);
        assert!(
            pending.is_empty(),
            "no matched edges existed, nothing to kick"
        );
    }

    #[test]
    fn sequential_settle_matches_one_and_parks_rest() {
        let mut s = hub_state(12);
        let mut pending = Vec::new();
        random_settle_one(&mut s, v(0), 1, &mut pending);
        assert_eq!(s.level_of(v(0)), 1);
        assert_eq!(s.matching_size(), 1);
        let matched_id = s.matched_edge_ids()[0];
        // All other hub edges are parked in D(matched).
        assert_eq!(s.edges[&matched_id].bucket.len(), 11);
        assert_eq!(s.metrics.temp_deletions, 11);
        assert_eq!(s.metrics.per_level[1].epochs_created, 1);
        assert_eq!(s.metrics.per_level[1].d_size_at_creation, 11);
    }

    #[test]
    fn kick_releases_bucket_for_reinsertion() {
        let mut s = hub_state(10);
        let mut pending = Vec::new();
        // Settle the hub at level 1, then kick the matched edge out again.
        random_settle_one(&mut s, v(0), 1, &mut pending);
        let matched_id = s.matched_edge_ids()[0];
        kick_matched_edge(&mut s, matched_id, &mut pending);
        // The kicked edge plus its 9 parked edges are queued for re-insertion.
        assert_eq!(pending.len(), 10);
        assert_eq!(s.matching_size(), 0);
        assert_eq!(s.metrics.per_level[1].epochs_ended_induced, 1);
        // The endpoints of the kicked edge became undecided.
        assert!(!s.undecided.is_empty());
    }

    #[test]
    fn process_level_step1_rematches_free_edges() {
        // Path 0-1-2-3 with (1,2) matched at level 2; the adversary deletes it,
        // exposing 1 and 2 as undecided at level 2.
        let mut s = MatcherState::new(4, Config::for_graphs(5));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.register_edge(&edge(1, &[1, 2]), false, 0);
        s.register_edge(&edge(2, &[2, 3]), false, 0);
        s.match_edge(EdgeId(1), 2);
        // Adversary deletion of the matched edge.
        s.unmatch_edge(EdgeId(1));
        let mut pending = Vec::new();
        release_bucket_and_remove(&mut s, EdgeId(1), false, &mut pending);
        for level in (0..=s.num_levels()).rev() {
            process_level(&mut s, level, &mut pending);
        }
        s.flush_dirty();
        // Both remaining edges must be matched (they are vertex-disjoint).
        assert_eq!(s.matching_size(), 2);
        assert!(s.undecided.is_empty());
        assert!(pending.is_empty());
        // Undecided nodes that got rematched sit at level 0 with their new edges.
        assert_eq!(s.edges[&EdgeId(0)].level, 0);
        assert_eq!(s.edges[&EdgeId(2)].level, 0);
    }

    #[test]
    fn process_level_step1_demotes_isolated_nodes() {
        // A single matched edge (0,1) is deleted; the endpoints have no other
        // incident edges and must settle at level -1.
        let mut s = MatcherState::new(2, Config::for_graphs(6));
        s.register_edge(&edge(0, &[0, 1]), false, 0);
        s.match_edge(EdgeId(0), 1);
        s.unmatch_edge(EdgeId(0));
        let mut pending = Vec::new();
        release_bucket_and_remove(&mut s, EdgeId(0), false, &mut pending);
        for level in (0..=s.num_levels()).rev() {
            process_level(&mut s, level, &mut pending);
        }
        assert_eq!(s.level_of(v(0)), -1);
        assert_eq!(s.level_of(v(1)), -1);
        assert_eq!(s.matching_size(), 0);
        assert!(s.undecided.is_empty());
    }

    #[test]
    fn grand_random_settle_with_many_hubs() {
        // Several disjoint hubs, all qualifying for level 1 simultaneously: the
        // parallel settle must handle them in one invocation.
        let hubs = 6u32;
        let fan = 15u32;
        let n = hubs * (fan + 1);
        let mut s = MatcherState::new(n as usize, Config::for_graphs(9));
        let mut next = 0u64;
        for h in 0..hubs {
            let base = h * (fan + 1);
            for i in 0..fan {
                s.register_edge(&edge(next, &[base, base + 1 + i]), false, 0);
                next += 1;
            }
        }
        s.flush_dirty();
        let b: Vec<VertexId> = s.s_levels[1].iter().copied().collect();
        assert_eq!(b.len(), hubs as usize);
        let mut pending = Vec::new();
        grand_random_settle(&mut s, b.clone(), 1, &mut pending);
        s.flush_dirty();
        for &hub in &b {
            let ok = s.level_of(hub) == 1 || s.o_tilde(hub, 1) < 4;
            assert!(ok, "hub {hub} violates the settle postcondition");
        }
        // Lemma 4.6: at least |B|/α³ new matched edges; with |B| = 6 and α = 8 the
        // bound is trivially ≥ 1 — check the stronger practical expectation that at
        // least one edge per two hubs was created.
        assert!(s.matching_size() >= 1);
    }
}
