//! Randomized sequential repair baseline.
//!
//! A light-weight cousin of the random-settle idea from the sequential dynamic
//! algorithms [BGS11, Sol16, AS21]: when a matched hyperedge is deleted, each
//! exposed endpoint picks a *uniformly random* free incident hyperedge (instead of
//! the first one found).  Against an oblivious adversary this already spreads the
//! expensive repairs over the adversary's deletions in practice, although — unlike
//! the leveling scheme of the paper — it has no amortized guarantee.  It serves as a
//! middle baseline between [`crate::naive::NaiveDynamicMatching`] and the real
//! algorithm in the E5/E10 experiments.

use crate::persist;
use pdmm_hypergraph::engine::{
    read_state_counters, read_state_graph, read_state_header, read_state_rng, run_batch,
    run_batch_trusted, write_state_counters, write_state_graph, write_state_header,
    write_state_rng, BatchError, BatchKernel, BatchReport, EngineBuilder, EngineMetrics,
    KernelOutcome, MatchingEngine, MatchingIter, RepairError, StateError, StateParser,
    UpdateCounters, ValidatedBatch,
};
use pdmm_hypergraph::graph::DynamicHypergraph;
use pdmm_hypergraph::matching::{verify_maximality, Matching};
use pdmm_hypergraph::types::{EdgeId, HyperEdge, Update, VertexId};
use pdmm_primitives::cost_model::CostTracker;
use pdmm_primitives::random::RandomSource;

/// Sequential dynamic maximal matching with randomized replacement choices.
#[derive(Debug)]
pub struct RandomReplaceMatching {
    graph: DynamicHypergraph,
    matching: Matching,
    rng: RandomSource,
    cost: CostTracker,
    counters: UpdateCounters,
    max_rank: usize,
}

impl RandomReplaceMatching {
    /// Creates the algorithm over an empty graph with `num_vertices` vertices and
    /// no rank restriction.
    #[must_use]
    pub fn new(num_vertices: usize, seed: u64) -> Self {
        RandomReplaceMatching {
            graph: DynamicHypergraph::new(num_vertices),
            matching: Matching::new(),
            rng: RandomSource::from_seed(seed),
            cost: CostTracker::new(),
            counters: UpdateCounters::default(),
            max_rank: usize::MAX,
        }
    }

    /// Creates the algorithm from the engine-agnostic builder.
    #[must_use]
    pub fn from_builder(builder: &EngineBuilder) -> Self {
        let mut alg = Self::new(builder.num_vertices, builder.seed);
        alg.max_rank = builder.max_rank;
        alg
    }

    /// The current matching container (the trait's zero-copy
    /// [`MatchingEngine::matching`] iterator is usually what callers want).
    #[must_use]
    pub fn matching_state(&self) -> &Matching {
        &self.matching
    }

    /// The ground-truth graph built from the updates.
    #[must_use]
    pub fn graph(&self) -> &DynamicHypergraph {
        &self.graph
    }

    /// Work/depth counters accumulated so far.
    #[must_use]
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }

    fn edge_is_free(&self, edge: &HyperEdge) -> bool {
        edge.vertices()
            .iter()
            .all(|&v| !self.matching.is_matched(v))
    }

    fn handle_insert(&mut self, edge: HyperEdge) {
        self.cost.work(edge.rank() as u64);
        self.graph.insert_edge(edge.clone());
        if self.edge_is_free(&edge) {
            self.matching.add(&edge);
        }
    }

    /// Returns `true` iff the deletion hit a matched edge (the expensive case).
    fn handle_delete(&mut self, id: EdgeId) -> bool {
        let edge = self.graph.delete_edge(id);
        self.cost.work(edge.rank() as u64);
        if !self.matching.contains_edge(id) {
            return false;
        }
        self.matching.remove(&edge);
        for &v in edge.vertices() {
            if self.matching.is_matched(v) {
                continue;
            }
            // Collect the free incident edges and pick one uniformly at random.
            let incident = self.graph.incident_edges(v);
            self.cost.work(incident.len() as u64);
            let free: Vec<HyperEdge> = incident
                .iter()
                .filter_map(|cand_id| self.graph.edge(*cand_id).cloned())
                .filter(|cand| self.edge_is_free(cand))
                .collect();
            self.cost
                .work(free.iter().map(|e| e.rank() as u64).sum::<u64>());
            if !free.is_empty() {
                let pick = self.rng.uniform_below(free.len() as u64) as usize;
                self.matching.add(&free[pick]);
            }
        }
        true
    }
}

impl MatchingEngine for RandomReplaceMatching {
    fn name(&self) -> &'static str {
        "random-replace-sequential"
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_rank(&self) -> usize {
        self.max_rank
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.graph.contains_edge(id)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchReport, BatchError> {
        run_batch(self, updates)
    }

    fn apply_batch_trusted(
        &mut self,
        batch: ValidatedBatch<'_>,
    ) -> Result<BatchReport, BatchError> {
        Ok(run_batch_trusted(self, batch))
    }

    fn matching(&self) -> MatchingIter<'_> {
        MatchingIter::new(self.matching.iter())
    }

    fn matching_size(&self) -> usize {
        self.matching.len()
    }

    fn verify(&mut self) -> Result<(), String> {
        verify_maximality(&self.graph, &self.matching.edge_ids()).map_err(|e| format!("{e:?}"))
    }

    fn metrics(&self) -> EngineMetrics {
        let cost = self.cost.snapshot();
        self.counters.into_metrics(cost.work, cost.depth)
    }

    fn free_vertices(&self) -> Option<Vec<VertexId>> {
        Some(
            (0..self.graph.num_vertices() as u32)
                .map(VertexId)
                .filter(|&v| !self.matching.is_matched(v))
                .collect(),
        )
    }

    fn force_match(&mut self, id: EdgeId) -> Result<(), RepairError> {
        // Deterministic by construction: the rng is not consulted, so a
        // force-matched repair never perturbs future random draws.
        let Some(edge) = self.graph.edge(id).cloned() else {
            return Err(RepairError::UnknownEdge { id });
        };
        if self.matching.contains_edge(id) {
            return Err(RepairError::AlreadyMatched { id });
        }
        if let Some(&v) = edge
            .vertices()
            .iter()
            .find(|&&v| self.matching.is_matched(v))
        {
            return Err(RepairError::EndpointMatched { id, vertex: v });
        }
        self.cost.work(edge.rank() as u64);
        self.matching.add(&edge);
        Ok(())
    }

    fn save_state(&self) -> Option<String> {
        let mut out = String::new();
        let cost = self.cost.snapshot();
        write_state_header(&mut out, self.name(), self.num_vertices(), self.max_rank);
        write_state_counters(&mut out, &self.counters, cost.work, cost.depth);
        let (words, index) = self.rng.state();
        write_state_rng(&mut out, words, index);
        write_state_graph(&mut out, &self.graph);
        persist::write_matched(&mut out, &self.matching);
        Some(out)
    }

    fn restore_state(&mut self, blob: &str) -> Result<(), StateError> {
        if self.counters.batches != 0 {
            return Err(StateError::NotFresh {
                batches: self.counters.batches,
            });
        }
        let mut p = StateParser::new(blob);
        read_state_header(&mut p, self.name(), self.num_vertices(), self.max_rank)?;
        let (counters, work, depth) = read_state_counters(&mut p)?;
        let (words, index) = read_state_rng(&mut p)?;
        let graph = read_state_graph(&mut p, self.num_vertices(), self.max_rank)?;
        let matching = persist::read_matched(&mut p, &graph)?;
        p.finish()?;
        self.graph = graph;
        self.matching = matching;
        self.rng = RandomSource::from_state(words, index);
        self.counters = counters;
        self.cost = CostTracker::new();
        self.cost.work(work);
        self.cost.rounds(depth);
        Ok(())
    }
}

impl BatchKernel for RandomReplaceMatching {
    fn run_kernel(&mut self, updates: &[Update]) -> KernelOutcome {
        let mut outcome = KernelOutcome::default();
        for update in updates {
            // Each update is one sequential step: depth grows linearly in the batch.
            self.cost.round();
            match update {
                Update::Insert(edge) => self.handle_insert(edge.clone()),
                Update::Delete(id) => {
                    outcome.matched_deletions += usize::from(self.handle_delete(*id));
                }
            }
        }
        outcome
    }

    fn record_batch(&mut self, delta: &UpdateCounters) {
        self.counters.merge(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmm_hypergraph::generators::gnm_graph;
    use pdmm_hypergraph::streams::{insert_then_teardown, random_churn};
    use pdmm_hypergraph::types::UpdateBatch;
    use proptest::prelude::*;

    fn check_after_every_batch(num_vertices: usize, batches: &[UpdateBatch], seed: u64) {
        let mut alg = RandomReplaceMatching::new(num_vertices, seed);
        for batch in batches {
            alg.apply_batch(batch).unwrap();
            let ids = alg.matching_ids();
            assert_eq!(verify_maximality(alg.graph(), &ids), Ok(()));
        }
    }

    #[test]
    fn maximal_throughout_teardown() {
        let edges = gnm_graph(50, 180, 2, 0);
        let w = insert_then_teardown(50, edges, 30, 1);
        check_after_every_batch(w.num_vertices, &w.batches, 42);
    }

    #[test]
    fn maximal_throughout_churn_rank_three() {
        let w = random_churn(60, 3, 120, 12, 30, 0.45, 5);
        check_after_every_batch(w.num_vertices, &w.batches, 43);
    }

    #[test]
    fn different_seeds_may_pick_different_matchings() {
        let edges = gnm_graph(30, 120, 4, 0);
        let w = insert_then_teardown(30, edges, 10, 9);
        let mut a = RandomReplaceMatching::new(30, 1);
        let mut b = RandomReplaceMatching::new(30, 2);
        // Apply only the first two thirds of batches so matchings are non-empty.
        let prefix = &w.batches[..w.batches.len() * 2 / 3];
        a.apply_all(prefix).unwrap();
        b.apply_all(prefix).unwrap();
        // Both must be maximal regardless of the coin flips.
        assert_eq!(verify_maximality(a.graph(), &a.matching_ids()), Ok(()));
        assert_eq!(verify_maximality(b.graph(), &b.matching_ids()), Ok(()));
    }

    #[test]
    fn builder_rank_is_enforced() {
        let mut alg = RandomReplaceMatching::from_builder(&EngineBuilder::new(5).rank(2).seed(1));
        assert!(matches!(
            alg.apply_batch(&[Update::Insert(HyperEdge::new(
                EdgeId(0),
                (0..3).map(pdmm_hypergraph::types::VertexId).collect(),
            ))]),
            Err(BatchError::RankExceeded { .. })
        ));
    }

    #[test]
    fn state_roundtrip_resumes_the_random_stream() {
        // A workload with enough matched deletions that the replacement RNG is
        // consulted both before and after the save point.
        let w = random_churn(40, 2, 100, 14, 30, 0.45, 23);
        let (prefix, tail) = w.batches.split_at(7);
        let mut a = RandomReplaceMatching::new(w.num_vertices, 9);
        a.apply_all(prefix).unwrap();
        let blob = a.save_state().unwrap();
        let mut b = RandomReplaceMatching::new(w.num_vertices, 9);
        b.restore_state(&blob).unwrap();
        assert_eq!(b.save_state().unwrap(), blob);
        for batch in tail {
            assert_eq!(a.apply_batch(batch).unwrap(), b.apply_batch(batch).unwrap());
        }
        // Blob equality covers graph, matching, counters, and the RNG position.
        assert_eq!(a.save_state(), b.save_state());
    }

    #[test]
    fn restore_does_not_depend_on_the_builder_seed() {
        // The RNG position is restored wholesale from the blob, so a twin
        // built with a different seed still continues identically.
        let w = random_churn(40, 2, 100, 14, 30, 0.45, 24);
        let (prefix, tail) = w.batches.split_at(7);
        let mut a = RandomReplaceMatching::new(w.num_vertices, 1);
        a.apply_all(prefix).unwrap();
        let blob = a.save_state().unwrap();
        let mut b = RandomReplaceMatching::new(w.num_vertices, 999);
        b.restore_state(&blob).unwrap();
        for batch in tail {
            assert_eq!(a.apply_batch(batch).unwrap(), b.apply_batch(batch).unwrap());
        }
        assert_eq!(a.save_state(), b.save_state());
    }

    proptest! {
        #[test]
        fn prop_random_replace_stays_maximal(
            seed in 0u64..300,
            alg_seed in 0u64..10,
            batch_size in 1usize..25,
        ) {
            let w = random_churn(35, 2, 50, 6, batch_size, 0.5, seed);
            check_after_every_batch(w.num_vertices, &w.batches, alg_seed);
        }
    }
}
