//! Recompute-from-scratch baseline.
//!
//! The obvious alternative to a dynamic algorithm: after every batch, throw the old
//! matching away and recompute a maximal matching of the *entire* current graph with
//! the static parallel algorithm of Theorem 2.2.  Its depth per batch is fine
//! (`O(log M)`), but its work per batch is `Θ(M·r)` regardless of how small the
//! batch is — this is the baseline the dynamic algorithm must beat in experiment E4,
//! and the crossover point (batch size vs. graph size) is part of what that
//! experiment reports.

use pdmm_hypergraph::dynamic::DynamicMatcher;
use pdmm_hypergraph::graph::DynamicHypergraph;
use pdmm_hypergraph::types::{EdgeId, UpdateBatch};
use pdmm_primitives::cost_model::CostTracker;
use pdmm_primitives::random::RandomSource;
use pdmm_static::luby::luby_maximal_matching;

/// Baseline that recomputes a static maximal matching after every batch.
#[derive(Debug)]
pub struct RecomputeFromScratch {
    graph: DynamicHypergraph,
    matching: Vec<EdgeId>,
    rng: RandomSource,
    cost: CostTracker,
}

impl RecomputeFromScratch {
    /// Creates the baseline over an empty graph with `num_vertices` vertices.
    #[must_use]
    pub fn new(num_vertices: usize, seed: u64) -> Self {
        RecomputeFromScratch {
            graph: DynamicHypergraph::new(num_vertices),
            matching: Vec::new(),
            rng: RandomSource::from_seed(seed),
            cost: CostTracker::new(),
        }
    }

    /// The ground-truth graph built from the updates.
    #[must_use]
    pub fn graph(&self) -> &DynamicHypergraph {
        &self.graph
    }

    /// Work/depth counters accumulated so far.
    #[must_use]
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }
}

impl DynamicMatcher for RecomputeFromScratch {
    fn apply_batch(&mut self, batch: &UpdateBatch) {
        self.graph.apply_batch(batch);
        self.cost.work(batch.len() as u64);
        self.cost.round();
        let edges = self.graph.snapshot_edges();
        let result = luby_maximal_matching(&edges, &mut self.rng, Some(&self.cost));
        self.matching = result.edges;
    }

    fn matching_edge_ids(&self) -> Vec<EdgeId> {
        self.matching.clone()
    }

    fn name(&self) -> &'static str {
        "recompute-from-scratch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmm_hypergraph::generators::gnm_graph;
    use pdmm_hypergraph::matching::verify_maximality;
    use pdmm_hypergraph::streams::random_churn;

    #[test]
    fn maximal_after_each_batch() {
        let w = random_churn(70, 2, 100, 10, 25, 0.5, 3);
        let mut alg = RecomputeFromScratch::new(w.num_vertices, 1);
        for batch in &w.batches {
            alg.apply_batch(batch);
            assert_eq!(
                verify_maximality(alg.graph(), &alg.matching_edge_ids()),
                Ok(())
            );
        }
    }

    #[test]
    fn work_scales_with_graph_size_not_batch_size() {
        // Prime a small and a large graph, then apply the same number of
        // single-deletion batches to each: the larger graph must cost far more
        // work per (tiny) batch, because recomputation touches the whole graph.
        fn work_for(n: usize, m: usize) -> u64 {
            let edges = gnm_graph(n, m, 1, 0);
            let ids: Vec<_> = edges.iter().map(|e| e.id).collect();
            let mut alg = RecomputeFromScratch::new(n, 1);
            alg.apply_batch(&edges.into_iter().map(pdmm_hypergraph::types::Update::Insert).collect());
            let before = alg.cost().snapshot();
            for id in ids.iter().take(10) {
                alg.apply_batch(&vec![pdmm_hypergraph::types::Update::Delete(*id)]);
            }
            alg.cost().snapshot().since(&before).work
        }
        let small = work_for(40, 100);
        let large = work_for(400, 4000);
        assert!(
            large > small * 5,
            "large-graph recompute work {large} should dwarf small-graph work {small}"
        );
    }

    #[test]
    fn name_is_stable() {
        let alg = RecomputeFromScratch::new(4, 0);
        assert_eq!(alg.name(), "recompute-from-scratch");
    }
}
