//! Recompute-from-scratch baseline.
//!
//! The obvious alternative to a dynamic algorithm: after every batch, throw the old
//! matching away and recompute a maximal matching of the *entire* current graph with
//! the static parallel algorithm of Theorem 2.2.  Its depth per batch is fine
//! (`O(log M)`), but its work per batch is `Θ(M·r)` regardless of how small the
//! batch is — this is the baseline the dynamic algorithm must beat in experiment E4,
//! and the crossover point (batch size vs. graph size) is part of what that
//! experiment reports.
//!
//! (The *sequential* recompute yardstick — a greedy scan instead of Luby — is the
//! [`pdmm_static::StaticRecompute`] adapter.)

use pdmm_hypergraph::engine::{
    read_state_counters, read_state_graph, read_state_header, read_state_rng, run_batch,
    run_batch_trusted, write_state_counters, write_state_graph, write_state_header,
    write_state_rng, BatchError, BatchKernel, BatchReport, EngineBuilder, EngineMetrics,
    EnginePool, KernelOutcome, MatchingEngine, MatchingIter, RepairError, StateError, StateParser,
    UpdateCounters, ValidatedBatch,
};
use pdmm_hypergraph::graph::DynamicHypergraph;
use pdmm_hypergraph::matching::verify_maximality;
use pdmm_hypergraph::types::{EdgeId, Update, VertexId};
use pdmm_primitives::cost_model::CostTracker;
use pdmm_primitives::random::RandomSource;
use pdmm_static::luby::luby_maximal_matching;
use rustc_hash::FxHashSet;

/// Baseline that recomputes a static maximal matching after every batch.
#[derive(Debug)]
pub struct RecomputeFromScratch {
    graph: DynamicHypergraph,
    matching: Vec<EdgeId>,
    rng: RandomSource,
    cost: CostTracker,
    counters: UpdateCounters,
    max_rank: usize,
    /// Pool the per-batch Luby recomputation runs on (`EngineBuilder::threads`).
    pool: EnginePool,
}

impl RecomputeFromScratch {
    /// Creates the baseline over an empty graph with `num_vertices` vertices and
    /// no rank restriction.
    #[must_use]
    pub fn new(num_vertices: usize, seed: u64) -> Self {
        RecomputeFromScratch {
            graph: DynamicHypergraph::new(num_vertices),
            matching: Vec::new(),
            rng: RandomSource::from_seed(seed),
            cost: CostTracker::new(),
            counters: UpdateCounters::default(),
            max_rank: usize::MAX,
            pool: EnginePool::default(),
        }
    }

    /// Creates the baseline from the engine-agnostic builder
    /// (`builder.threads` bounds the pool the Luby recomputation runs on).
    #[must_use]
    pub fn from_builder(builder: &EngineBuilder) -> Self {
        let mut alg = Self::new(builder.num_vertices, builder.seed);
        alg.max_rank = builder.max_rank;
        alg.pool = EnginePool::from_builder(builder);
        alg
    }

    /// The ground-truth graph built from the updates.
    #[must_use]
    pub fn graph(&self) -> &DynamicHypergraph {
        &self.graph
    }

    /// Work/depth counters accumulated so far.
    #[must_use]
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }

    /// Vertices covered by the current matching (matched edges are always
    /// live: the matching is recomputed over live edges every batch).
    fn covered_vertices(&self) -> FxHashSet<VertexId> {
        let mut covered = FxHashSet::default();
        for id in &self.matching {
            let edge = self.graph.edge(*id).expect("matched edges are live");
            covered.extend(edge.vertices().iter().copied());
        }
        covered
    }
}

impl MatchingEngine for RecomputeFromScratch {
    fn name(&self) -> &'static str {
        "recompute-from-scratch"
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_rank(&self) -> usize {
        self.max_rank
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.graph.contains_edge(id)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchReport, BatchError> {
        run_batch(self, updates)
    }

    fn apply_batch_trusted(
        &mut self,
        batch: ValidatedBatch<'_>,
    ) -> Result<BatchReport, BatchError> {
        Ok(run_batch_trusted(self, batch))
    }

    fn matching(&self) -> MatchingIter<'_> {
        MatchingIter::new(self.matching.iter().copied())
    }

    fn matching_size(&self) -> usize {
        self.matching.len()
    }

    fn verify(&mut self) -> Result<(), String> {
        verify_maximality(&self.graph, &self.matching).map_err(|e| format!("{e:?}"))
    }

    fn metrics(&self) -> EngineMetrics {
        let cost = self.cost.snapshot();
        self.counters.into_metrics(cost.work, cost.depth)
    }

    fn free_vertices(&self) -> Option<Vec<VertexId>> {
        let covered = self.covered_vertices();
        Some(
            (0..self.graph.num_vertices() as u32)
                .map(VertexId)
                .filter(|v| !covered.contains(v))
                .collect(),
        )
    }

    fn force_match(&mut self, id: EdgeId) -> Result<(), RepairError> {
        // The next batch recomputes from scratch anyway, so the graft only
        // has to keep the current matching valid (restore_state re-validates
        // exactly that: live ids, pairwise-disjoint endpoints).
        if !self.graph.contains_edge(id) {
            return Err(RepairError::UnknownEdge { id });
        }
        if self.matching.contains(&id) {
            return Err(RepairError::AlreadyMatched { id });
        }
        let covered = self.covered_vertices();
        let edge = self.graph.edge(id).expect("liveness checked above");
        if let Some(&v) = edge.vertices().iter().find(|&&v| covered.contains(&v)) {
            return Err(RepairError::EndpointMatched { id, vertex: v });
        }
        let rank = edge.rank() as u64;
        self.cost.work(rank);
        self.matching.push(id);
        Ok(())
    }

    fn save_state(&self) -> Option<String> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cost = self.cost.snapshot();
        write_state_header(&mut out, self.name(), self.num_vertices(), self.max_rank);
        write_state_counters(&mut out, &self.counters, cost.work, cost.depth);
        let (words, index) = self.rng.state();
        write_state_rng(&mut out, words, index);
        write_state_graph(&mut out, &self.graph);
        // Verbatim order: after the canonical input sort in `run_kernel` the
        // matching vector is itself a pure function of graph + RNG position.
        out.push_str("matching");
        for id in &self.matching {
            let _ = write!(out, " {}", id.0);
        }
        out.push('\n');
        Some(out)
    }

    fn restore_state(&mut self, blob: &str) -> Result<(), StateError> {
        if self.counters.batches != 0 {
            return Err(StateError::NotFresh {
                batches: self.counters.batches,
            });
        }
        let mut p = StateParser::new(blob);
        read_state_header(&mut p, self.name(), self.num_vertices(), self.max_rank)?;
        let (counters, work, depth) = read_state_counters(&mut p)?;
        let (words, index) = read_state_rng(&mut p)?;
        let graph = read_state_graph(&mut p, self.num_vertices(), self.max_rank)?;
        let rest = p.tagged("matching")?;
        let mut matching = Vec::new();
        let mut claimed = FxHashSet::default();
        for tok in rest.split_whitespace() {
            let id = EdgeId(p.parse_token(tok, "matched edge id")?);
            let Some(edge) = graph.edge(id) else {
                return Err(p.corrupt(format!("matched edge {id} is not live")));
            };
            for &v in edge.vertices() {
                if !claimed.insert(v) {
                    return Err(p.corrupt(format!("matched edge {id} conflicts with another")));
                }
            }
            matching.push(id);
        }
        p.finish()?;
        self.graph = graph;
        self.matching = matching;
        self.rng = RandomSource::from_state(words, index);
        self.counters = counters;
        self.cost = CostTracker::new();
        self.cost.work(work);
        self.cost.rounds(depth);
        Ok(())
    }
}

impl BatchKernel for RecomputeFromScratch {
    fn run_kernel(&mut self, updates: &[Update]) -> KernelOutcome {
        // Hash the previous matching once so per-deletion lookups are O(1)
        // instead of a linear scan per update.
        let matched: FxHashSet<EdgeId> = self.matching.iter().copied().collect();
        let mut matched_deletions = 0usize;
        for update in updates {
            match update {
                Update::Insert(edge) => {
                    self.graph.insert_edge(edge.clone());
                }
                Update::Delete(id) => {
                    if matched.contains(id) {
                        matched_deletions += 1;
                    }
                    self.graph.delete_edge(*id);
                }
            }
        }
        self.cost.work(updates.len() as u64);
        self.cost.round();
        // Canonical input order: Luby's selected *set* is order-independent
        // (stateless per-edge priorities), but its result vector follows input
        // order — sorting keeps `self.matching` a pure function of the graph
        // and the RNG position, which checkpoint recovery relies on.
        let mut edges = self.graph.snapshot_edges();
        edges.sort_unstable_by_key(|e| e.id);
        let rng = &mut self.rng;
        let cost = &self.cost;
        let result = self
            .pool
            .install(|| luby_maximal_matching(&edges, rng, Some(cost)));
        self.matching = result.edges;
        KernelOutcome {
            matched_deletions,
            // The matching is thrown away and recomputed on every batch.
            rebuilt: true,
        }
    }

    fn record_batch(&mut self, delta: &UpdateCounters) {
        self.counters.merge(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmm_hypergraph::generators::gnm_graph;
    use pdmm_hypergraph::streams::random_churn;

    #[test]
    fn maximal_after_each_batch() {
        let w = random_churn(70, 2, 100, 10, 25, 0.5, 3);
        let mut alg = RecomputeFromScratch::new(w.num_vertices, 1);
        for batch in &w.batches {
            alg.apply_batch(batch).unwrap();
            assert_eq!(verify_maximality(alg.graph(), &alg.matching_ids()), Ok(()));
        }
    }

    #[test]
    fn work_scales_with_graph_size_not_batch_size() {
        // Prime a small and a large graph, then apply the same number of
        // single-deletion batches to each: the larger graph must cost far more
        // work per (tiny) batch, because recomputation touches the whole graph.
        fn work_for(n: usize, m: usize) -> u64 {
            let edges = gnm_graph(n, m, 1, 0);
            let ids: Vec<_> = edges.iter().map(|e| e.id).collect();
            let mut alg = RecomputeFromScratch::new(n, 1);
            let batch: Vec<Update> = edges.into_iter().map(Update::Insert).collect();
            alg.apply_batch(&batch).unwrap();
            let before = alg.cost().snapshot();
            for id in ids.iter().take(10) {
                alg.apply_batch(&[Update::Delete(*id)]).unwrap();
            }
            alg.cost().snapshot().since(&before).work
        }
        let small = work_for(40, 100);
        let large = work_for(400, 4000);
        assert!(
            large > small * 5,
            "large-graph recompute work {large} should dwarf small-graph work {small}"
        );
    }

    #[test]
    fn name_is_stable() {
        let alg = RecomputeFromScratch::new(4, 0);
        assert_eq!(alg.name(), "recompute-from-scratch");
    }

    #[test]
    fn state_roundtrip_continues_bit_identically() {
        let w = random_churn(60, 3, 110, 12, 28, 0.5, 31);
        let (prefix, tail) = w.batches.split_at(6);
        let mut a = RecomputeFromScratch::new(w.num_vertices, 5);
        a.apply_all(prefix).unwrap();
        let blob = a.save_state().unwrap();
        // Restored twin with a different builder seed: the RNG position comes
        // from the blob, so every future Luby run draws the same priorities.
        let mut b = RecomputeFromScratch::new(w.num_vertices, 777);
        b.restore_state(&blob).unwrap();
        assert_eq!(b.save_state().unwrap(), blob);
        for batch in tail {
            assert_eq!(a.apply_batch(batch).unwrap(), b.apply_batch(batch).unwrap());
        }
        assert_eq!(a.save_state(), b.save_state());
        assert_eq!(a.matching_ids(), b.matching_ids());
    }

    #[test]
    fn unknown_deletion_is_a_typed_error() {
        let mut alg = RecomputeFromScratch::new(4, 0);
        assert_eq!(
            alg.apply_batch(&[Update::Delete(EdgeId(1))]),
            Err(BatchError::UnknownDeletion { id: EdgeId(1) })
        );
    }
}
