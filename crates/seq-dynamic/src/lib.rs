//! # pdmm-seq-dynamic
//!
//! Baseline dynamic maximal-matching algorithms for the Parallel Dynamic Maximal
//! Matching reproduction (Ghaffari & Trygub, SPAA 2024):
//!
//! * [`naive`] — the §3.1 strawman: one update at a time, greedy repair by scanning
//!   the incidence lists of exposed endpoints;
//! * [`random_replace`] — the same structure with uniformly random replacement
//!   choices (the raw intuition behind random-settle, without a leveling scheme);
//! * [`recompute`] — recompute a static maximal matching of the whole graph after
//!   every batch (Theorem 2.2 used statically).
//!
//! The *leveled* sequential dynamic algorithm of \[BGS11\]/\[AS21\] is obtained by
//! driving the paper's algorithm (`pdmm-core`) with single-update batches; the
//! experiment harness (`pdmm-bench`) does exactly that for experiment E5, so it is
//! not duplicated here.
//!
//! Every baseline implements the workspace-wide
//! [`pdmm_hypergraph::engine::MatchingEngine`] trait and is constructed from the
//! same [`pdmm_hypergraph::engine::EngineBuilder`] as the parallel algorithm, so
//! the harness and the conformance tests drive all of them identically.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod naive;
mod persist;
pub mod random_replace;
pub mod recompute;

pub use naive::NaiveDynamicMatching;
pub use random_replace::RandomReplaceMatching;
pub use recompute::RecomputeFromScratch;
