//! Shared helpers for the baselines' state (de)serialization.
//!
//! The graph/counters/rng sections are handled by the workspace-wide helpers in
//! [`pdmm_hypergraph::engine`]; this module adds the one section specific to the
//! incremental-repair baselines — the matched edge set — in canonical
//! (ascending-id) order, which is safe because [`Matching`] is an unordered
//! container: no baseline decision depends on its iteration order.

use pdmm_hypergraph::engine::{StateError, StateParser};
use pdmm_hypergraph::graph::DynamicHypergraph;
use pdmm_hypergraph::matching::Matching;
use pdmm_hypergraph::types::EdgeId;

/// Writes the matched edge ids, ascending, as one `matched` line.
pub(crate) fn write_matched(out: &mut String, matching: &Matching) {
    use std::fmt::Write as _;
    let mut ids = matching.edge_ids();
    ids.sort_unstable();
    out.push_str("matched");
    for id in ids {
        let _ = write!(out, " {}", id.0);
    }
    out.push('\n');
}

/// Reads a `matched` line back into a [`Matching`] over `graph`'s live edges,
/// rejecting ids that are not live or that share an endpoint.
pub(crate) fn read_matched(
    p: &mut StateParser<'_>,
    graph: &DynamicHypergraph,
) -> Result<Matching, StateError> {
    let rest = p.tagged("matched")?;
    let mut matching = Matching::new();
    for tok in rest.split_whitespace() {
        let id = EdgeId(p.parse_token(tok, "matched edge id")?);
        let Some(edge) = graph.edge(id) else {
            return Err(p.corrupt(format!("matched edge {id} is not live")));
        };
        if edge.vertices().iter().any(|&v| matching.is_matched(v)) {
            return Err(p.corrupt(format!("matched edge {id} conflicts with another")));
        }
        matching.add(edge);
    }
    Ok(matching)
}
