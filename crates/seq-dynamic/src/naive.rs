//! Naive sequential dynamic maximal matching.
//!
//! This is exactly the strawman the paper describes in §3.1: process updates one by
//! one; an insertion whose endpoints are all free joins the matching; when a matched
//! hyperedge is deleted, scan the incidence lists of its (now exposed) endpoints for
//! hyperedges whose endpoints are all free and add any that are found.  Per-update
//! work is `O(Σ_{v ∈ e} deg(v) · r)` in the worst case — the quantity the leveling
//! scheme of the real algorithms is designed to avoid — and the depth of a batch of
//! `k` updates is `Θ(k)` because updates are handled strictly sequentially.

use crate::persist;
use pdmm_hypergraph::engine::{
    read_state_counters, read_state_graph, read_state_header, run_batch, run_batch_trusted,
    write_state_counters, write_state_graph, write_state_header, BatchError, BatchKernel,
    BatchReport, EngineBuilder, EngineMetrics, KernelOutcome, MatchingEngine, MatchingIter,
    RepairError, StateError, StateParser, UpdateCounters, ValidatedBatch,
};
use pdmm_hypergraph::graph::DynamicHypergraph;
use pdmm_hypergraph::matching::{verify_maximality, Matching};
use pdmm_hypergraph::types::{EdgeId, HyperEdge, Update, VertexId};
use pdmm_primitives::cost_model::CostTracker;

/// Naive one-update-at-a-time dynamic maximal matching.
#[derive(Debug)]
pub struct NaiveDynamicMatching {
    graph: DynamicHypergraph,
    matching: Matching,
    cost: CostTracker,
    counters: UpdateCounters,
    max_rank: usize,
}

impl NaiveDynamicMatching {
    /// Creates the algorithm over an empty graph with `num_vertices` vertices and
    /// no rank restriction.
    #[must_use]
    pub fn new(num_vertices: usize) -> Self {
        NaiveDynamicMatching {
            graph: DynamicHypergraph::new(num_vertices),
            matching: Matching::new(),
            cost: CostTracker::new(),
            counters: UpdateCounters::default(),
            max_rank: usize::MAX,
        }
    }

    /// Creates the algorithm from the engine-agnostic builder (enforcing the
    /// builder's maximum rank, like every other engine).
    #[must_use]
    pub fn from_builder(builder: &EngineBuilder) -> Self {
        let mut alg = Self::new(builder.num_vertices);
        alg.max_rank = builder.max_rank;
        alg
    }

    /// The current matching container (the trait's zero-copy
    /// [`MatchingEngine::matching`] iterator is usually what callers want).
    #[must_use]
    pub fn matching_state(&self) -> &Matching {
        &self.matching
    }

    /// The ground-truth graph the algorithm has built from the updates.
    #[must_use]
    pub fn graph(&self) -> &DynamicHypergraph {
        &self.graph
    }

    /// Work/depth counters accumulated so far.
    #[must_use]
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }

    /// Number of single updates processed so far.
    #[must_use]
    pub fn updates_processed(&self) -> u64 {
        self.counters.updates
    }

    fn edge_is_free(&self, edge: &HyperEdge) -> bool {
        edge.vertices()
            .iter()
            .all(|&v| !self.matching.is_matched(v))
    }

    fn handle_insert(&mut self, edge: HyperEdge) {
        self.cost.work(edge.rank() as u64);
        self.graph.insert_edge(edge.clone());
        if self.edge_is_free(&edge) {
            self.matching.add(&edge);
        }
    }

    /// Returns `true` iff the deletion hit a matched edge (the expensive case).
    fn handle_delete(&mut self, id: EdgeId) -> bool {
        let edge = self.graph.delete_edge(id);
        self.cost.work(edge.rank() as u64);
        if !self.matching.contains_edge(id) {
            return false;
        }
        self.matching.remove(&edge);
        // Restore maximality: only edges incident to the exposed endpoints can have
        // become addable.  Scan their incidence lists greedily.
        for &v in edge.vertices() {
            if self.matching.is_matched(v) {
                continue;
            }
            let incident = self.graph.incident_edges(v);
            self.cost.work(incident.len() as u64);
            for cand_id in incident {
                let cand = self
                    .graph
                    .edge(cand_id)
                    .expect("incident edge must be live")
                    .clone();
                self.cost.work(cand.rank() as u64);
                if self.edge_is_free(&cand) {
                    self.matching.add(&cand);
                    break;
                }
            }
        }
        true
    }
}

impl MatchingEngine for NaiveDynamicMatching {
    fn name(&self) -> &'static str {
        "naive-sequential"
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn max_rank(&self) -> usize {
        self.max_rank
    }

    fn contains_edge(&self, id: EdgeId) -> bool {
        self.graph.contains_edge(id)
    }

    fn apply_batch(&mut self, updates: &[Update]) -> Result<BatchReport, BatchError> {
        run_batch(self, updates)
    }

    fn apply_batch_trusted(
        &mut self,
        batch: ValidatedBatch<'_>,
    ) -> Result<BatchReport, BatchError> {
        Ok(run_batch_trusted(self, batch))
    }

    fn matching(&self) -> MatchingIter<'_> {
        MatchingIter::new(self.matching.iter())
    }

    fn matching_size(&self) -> usize {
        self.matching.len()
    }

    fn verify(&mut self) -> Result<(), String> {
        verify_maximality(&self.graph, &self.matching.edge_ids()).map_err(|e| format!("{e:?}"))
    }

    fn metrics(&self) -> EngineMetrics {
        let cost = self.cost.snapshot();
        self.counters.into_metrics(cost.work, cost.depth)
    }

    fn free_vertices(&self) -> Option<Vec<VertexId>> {
        Some(
            (0..self.graph.num_vertices() as u32)
                .map(VertexId)
                .filter(|&v| !self.matching.is_matched(v))
                .collect(),
        )
    }

    fn force_match(&mut self, id: EdgeId) -> Result<(), RepairError> {
        let Some(edge) = self.graph.edge(id).cloned() else {
            return Err(RepairError::UnknownEdge { id });
        };
        if self.matching.contains_edge(id) {
            return Err(RepairError::AlreadyMatched { id });
        }
        if let Some(&v) = edge
            .vertices()
            .iter()
            .find(|&&v| self.matching.is_matched(v))
        {
            return Err(RepairError::EndpointMatched { id, vertex: v });
        }
        self.cost.work(edge.rank() as u64);
        self.matching.add(&edge);
        Ok(())
    }

    fn save_state(&self) -> Option<String> {
        let mut out = String::new();
        let cost = self.cost.snapshot();
        write_state_header(&mut out, self.name(), self.num_vertices(), self.max_rank);
        write_state_counters(&mut out, &self.counters, cost.work, cost.depth);
        write_state_graph(&mut out, &self.graph);
        persist::write_matched(&mut out, &self.matching);
        Some(out)
    }

    fn restore_state(&mut self, blob: &str) -> Result<(), StateError> {
        if self.counters.batches != 0 {
            return Err(StateError::NotFresh {
                batches: self.counters.batches,
            });
        }
        let mut p = StateParser::new(blob);
        read_state_header(&mut p, self.name(), self.num_vertices(), self.max_rank)?;
        let (counters, work, depth) = read_state_counters(&mut p)?;
        let graph = read_state_graph(&mut p, self.num_vertices(), self.max_rank)?;
        let matching = persist::read_matched(&mut p, &graph)?;
        p.finish()?;
        self.graph = graph;
        self.matching = matching;
        self.counters = counters;
        self.cost = CostTracker::new();
        self.cost.work(work);
        self.cost.rounds(depth);
        Ok(())
    }
}

impl BatchKernel for NaiveDynamicMatching {
    fn run_kernel(&mut self, updates: &[Update]) -> KernelOutcome {
        let mut outcome = KernelOutcome::default();
        for update in updates {
            // Each update is one sequential step: depth grows linearly in the batch.
            self.cost.round();
            match update {
                Update::Insert(edge) => self.handle_insert(edge.clone()),
                Update::Delete(id) => {
                    outcome.matched_deletions += usize::from(self.handle_delete(*id));
                }
            }
        }
        outcome
    }

    fn record_batch(&mut self, delta: &UpdateCounters) {
        self.counters.merge(delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdmm_hypergraph::generators::gnm_graph;
    use pdmm_hypergraph::streams::{insert_then_teardown, random_churn, sliding_window};
    use pdmm_hypergraph::types::{UpdateBatch, VertexId};
    use proptest::prelude::*;

    fn check_after_every_batch(num_vertices: usize, batches: &[UpdateBatch]) {
        let mut alg = NaiveDynamicMatching::new(num_vertices);
        for batch in batches {
            alg.apply_batch(batch).unwrap();
            let ids = alg.matching_ids();
            assert_eq!(verify_maximality(alg.graph(), &ids), Ok(()));
        }
    }

    #[test]
    fn insert_free_edge_joins_matching() {
        let mut alg = NaiveDynamicMatching::new(4);
        alg.apply_batch(&[Update::Insert(HyperEdge::pair(
            EdgeId(0),
            VertexId(0),
            VertexId(1),
        ))])
        .unwrap();
        assert_eq!(alg.matching_ids(), vec![EdgeId(0)]);
    }

    #[test]
    fn delete_matched_edge_repairs_maximality() {
        let mut alg = NaiveDynamicMatching::new(4);
        // Path 0-1-2-3: greedy matches (0,1); delete it; (1,2) or (0,?) must appear.
        alg.apply_batch(&[
            Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))),
            Update::Insert(HyperEdge::pair(EdgeId(1), VertexId(1), VertexId(2))),
            Update::Insert(HyperEdge::pair(EdgeId(2), VertexId(2), VertexId(3))),
        ])
        .unwrap();
        let report = alg.apply_batch(&[Update::Delete(EdgeId(0))]).unwrap();
        assert_eq!(report.matched_deletions, 1);
        let ids = alg.matching_ids();
        assert_eq!(verify_maximality(alg.graph(), &ids), Ok(()));
    }

    #[test]
    fn deleting_unmatched_edge_is_cheap_and_safe() {
        let mut alg = NaiveDynamicMatching::new(4);
        alg.apply_batch(&[
            Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))),
            Update::Insert(HyperEdge::pair(EdgeId(1), VertexId(1), VertexId(2))),
        ])
        .unwrap();
        let report = alg.apply_batch(&[Update::Delete(EdgeId(1))]).unwrap();
        assert_eq!(report.matched_deletions, 0);
        assert_eq!(alg.matching_ids(), vec![EdgeId(0)]);
    }

    #[test]
    fn invalid_batches_are_typed_errors() {
        let mut alg = NaiveDynamicMatching::from_builder(&EngineBuilder::new(4).rank(2));
        assert_eq!(
            alg.apply_batch(&[Update::Delete(EdgeId(3))]),
            Err(BatchError::UnknownDeletion { id: EdgeId(3) })
        );
        assert!(matches!(
            alg.apply_batch(&[Update::Insert(HyperEdge::new(
                EdgeId(0),
                vec![VertexId(0), VertexId(1), VertexId(2)],
            ))]),
            Err(BatchError::RankExceeded { .. })
        ));
        assert_eq!(alg.metrics().batches, 0);
    }

    #[test]
    fn maximal_throughout_sliding_window() {
        let edges = gnm_graph(60, 200, 3, 0);
        let w = sliding_window(60, edges, 20, 4);
        check_after_every_batch(w.num_vertices, &w.batches);
    }

    #[test]
    fn maximal_throughout_random_churn() {
        let w = random_churn(80, 2, 150, 15, 40, 0.5, 7);
        check_after_every_batch(w.num_vertices, &w.batches);
    }

    #[test]
    fn maximal_throughout_hypergraph_churn() {
        let w = random_churn(50, 4, 100, 10, 30, 0.4, 11);
        check_after_every_batch(w.num_vertices, &w.batches);
    }

    #[test]
    fn teardown_empties_matching() {
        let edges = gnm_graph(40, 120, 5, 0);
        let w = insert_then_teardown(40, edges, 25, 2);
        let mut alg = NaiveDynamicMatching::new(w.num_vertices);
        alg.apply_all(&w.batches).unwrap();
        assert!(alg.matching_ids().is_empty());
        assert_eq!(alg.graph().num_edges(), 0);
        assert_eq!(alg.updates_processed(), w.total_updates() as u64);
    }

    #[test]
    fn depth_equals_number_of_updates() {
        let w = random_churn(30, 2, 20, 5, 10, 0.5, 3);
        let mut alg = NaiveDynamicMatching::new(w.num_vertices);
        alg.apply_all(&w.batches).unwrap();
        assert_eq!(alg.cost().total_depth(), w.total_updates() as u64);
        assert_eq!(alg.metrics().depth, w.total_updates() as u64);
    }

    #[test]
    fn state_roundtrip_continues_bit_identically() {
        let w = random_churn(50, 2, 90, 12, 25, 0.5, 17);
        let (prefix, tail) = w.batches.split_at(6);
        let mut a = NaiveDynamicMatching::new(w.num_vertices);
        a.apply_all(prefix).unwrap();
        let blob = a.save_state().unwrap();
        let mut b = NaiveDynamicMatching::new(w.num_vertices);
        b.restore_state(&blob).unwrap();
        // The restored engine re-serializes to the same canonical blob …
        assert_eq!(b.save_state().unwrap(), blob);
        // … and continues exactly like the original.
        for batch in tail {
            assert_eq!(a.apply_batch(batch).unwrap(), b.apply_batch(batch).unwrap());
        }
        assert_eq!(a.save_state(), b.save_state());
    }

    #[test]
    fn restore_rejects_foreign_or_stale_blobs() {
        let a = NaiveDynamicMatching::new(10);
        let blob = a.save_state().unwrap();
        let mut wrong_n = NaiveDynamicMatching::new(11);
        assert!(matches!(
            wrong_n.restore_state(&blob),
            Err(StateError::ConfigMismatch {
                field: "num_vertices",
                ..
            })
        ));
        let mut wrong_rank = NaiveDynamicMatching::from_builder(&EngineBuilder::new(10).rank(2));
        assert!(matches!(
            wrong_rank.restore_state(&blob),
            Err(StateError::ConfigMismatch {
                field: "max_rank",
                ..
            })
        ));
        let mut used = NaiveDynamicMatching::new(10);
        used.apply_batch(&[Update::Insert(HyperEdge::pair(
            EdgeId(0),
            VertexId(0),
            VertexId(1),
        ))])
        .unwrap();
        assert_eq!(
            used.restore_state(&blob),
            Err(StateError::NotFresh { batches: 1 })
        );
        let mut fresh = NaiveDynamicMatching::new(10);
        assert!(matches!(
            fresh.restore_state("engine naive-sequential\nn 10"),
            Err(StateError::Corrupt { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_naive_stays_maximal(
            seed in 0u64..500,
            batch_size in 1usize..30,
            p_ins in 0.2f64..0.8,
        ) {
            let w = random_churn(40, 2, 60, 8, batch_size, p_ins, seed);
            check_after_every_batch(w.num_vertices, &w.batches);
        }
    }
}
