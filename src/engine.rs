//! The engine-agnostic API, plus construction of every engine the workspace
//! ships.
//!
//! The trait, builder, session, and error types live in
//! [`pdmm_hypergraph::engine`] (re-exported here); this module adds the one piece
//! that has to sit above all engine crates: [`build`], which turns an
//! [`EngineKind`] plus an [`EngineBuilder`] into a boxed [`MatchingEngine`].
//!
//! ```
//! use pdmm::engine::{self, EngineBuilder, EngineKind};
//! use pdmm::prelude::*;
//!
//! let builder = EngineBuilder::new(100).rank(2).seed(7);
//! let mut engines = engine::build_all(&builder);
//! let batch = vec![Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1)))];
//! for engine in &mut engines {
//!     engine.apply_batch(&batch).unwrap();
//!     assert_eq!(engine.matching_size(), 1, "{} disagrees", engine.name());
//! }
//! ```

pub use pdmm_hypergraph::engine::{
    run_batch, run_batch_trusted, validate_batch, validation_checks, BatchError, BatchKernel,
    BatchLedger, BatchReport, BatchSession, EngineBuilder, EngineKind, EngineMetrics, EnginePool,
    IngestReport, KernelOutcome, MatchingEngine, MatchingIter, RejectedUpdate, RepairError,
    UpdateCheck, UpdateCounters, ValidatedBatch, ValidationToken,
};

/// Constructs the engine of the given kind from a shared builder configuration.
///
/// Engines with parallel phases ([`EngineKind::Parallel`] and
/// [`EngineKind::RecomputeSequential`]) honor [`EngineBuilder::threads`] by
/// constructing an owned work-stealing pool and running every batch on it.
/// Every engine is `Send`, so the result can be moved into a long-lived
/// [`pdmm_hypergraph::service::EngineService`] and shared across threads.
///
/// ```
/// use pdmm::engine::{self, EngineBuilder, EngineKind};
///
/// let builder = EngineBuilder::new(100).rank(2).seed(7).threads(2);
/// let engine = engine::build(EngineKind::Parallel, &builder);
/// assert_eq!(engine.name(), "parallel-dynamic");
/// assert_eq!(engine.num_vertices(), 100);
/// ```
#[must_use]
pub fn build(kind: EngineKind, builder: &EngineBuilder) -> Box<dyn MatchingEngine + Send> {
    match kind {
        EngineKind::Parallel => Box::new(pdmm_core::ParallelDynamicMatching::from_builder(builder)),
        EngineKind::NaiveSequential => Box::new(
            pdmm_seq_dynamic::NaiveDynamicMatching::from_builder(builder),
        ),
        EngineKind::RandomReplace => Box::new(
            pdmm_seq_dynamic::RandomReplaceMatching::from_builder(builder),
        ),
        EngineKind::RecomputeSequential => Box::new(
            pdmm_seq_dynamic::RecomputeFromScratch::from_builder(builder),
        ),
        EngineKind::StaticRecompute => {
            Box::new(pdmm_static::StaticRecompute::from_builder(builder))
        }
    }
}

/// Constructs one engine of every kind from a shared builder configuration.
///
/// ```
/// use pdmm::engine::{self, EngineBuilder, EngineKind};
///
/// let engines = engine::build_all(&EngineBuilder::new(10));
/// assert_eq!(engines.len(), EngineKind::ALL.len());
/// ```
#[must_use]
pub fn build_all(builder: &EngineBuilder) -> Vec<Box<dyn MatchingEngine + Send>> {
    EngineKind::ALL.iter().map(|&k| build(k, builder)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_covers_every_kind_with_matching_names() {
        let builder = EngineBuilder::new(10).rank(3).seed(1);
        for kind in EngineKind::ALL {
            let engine = build(kind, &builder);
            assert_eq!(engine.name(), kind.name());
            assert_eq!(engine.num_vertices(), 10);
            assert_eq!(engine.max_rank(), 3);
        }
        assert_eq!(build_all(&builder).len(), EngineKind::ALL.len());
    }
}
