//! # pdmm — Parallel Dynamic Maximal Matching
//!
//! A from-scratch Rust reproduction of *Parallel Dynamic Maximal Matching*
//! (Ghaffari & Trygub, SPAA 2024): a randomized batch-dynamic algorithm that
//! maintains a maximal matching of a rank-`r` hypergraph under arbitrary batches of
//! hyperedge insertions and deletions, in polylogarithmic depth per batch and
//! polylogarithmic (amortized, `poly(r)`) work per update.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`engine`] — the engine-agnostic [`MatchingEngine`] API: the
//!   [`EngineBuilder`] configuration, typed [`engine::BatchError`]s, zero-copy
//!   matching queries, staged [`engine::BatchSession`] ingestion, and
//!   [`engine::build`] to construct any of the five engines,
//! * [`service`] — the serve path: a long-lived [`service::EngineService`]
//!   over any engine, with concurrent [`service::MatchingSnapshot`] reads, a
//!   bounded submission queue with backpressure, pluggable
//!   [`service::JournalSink`]s (in-memory or rotated files), and a journal
//!   that [`service::EngineService::replay`] rebuilds bit-identical state
//!   from,
//! * [`sharding`] — the sharded serving layer: `N` parallel
//!   [`sharding::ShardedService`] shards partitioning the vertex space behind
//!   a deterministic router, drained concurrently and merged into
//!   [`sharding::ShardedSnapshot`] reads with explicit cross-shard
//!   accounting and a boundary-arbitrated globally valid matching
//!   ([`sharding::ArbitratedMatching`]),
//! * [`net`] — the TCP front-end: [`net::serve`] puts a wire in front of a
//!   sharded service, speaking the [`hypergraph::io`] text format with typed
//!   admission responses (`OK`/`RETRY`/`SHED`/`ERR`) so overload degrades
//!   gracefully instead of blocking connections,
//! * [`checkpoint`] — checkpointed durability: fingerprinted drain-boundary
//!   checkpoints that truncate old journal segments, `O(delta)` recovery via
//!   [`service::EngineService::recover`] /
//!   [`sharding::ShardedService::recover`], and the fault-injecting
//!   [`checkpoint::FaultSink`] the crash tests are built on,
//! * [`core`] ([`ParallelDynamicMatching`]) — the paper's algorithm,
//! * [`hypergraph`] — the dynamic hypergraph substrate, workload generators,
//!   update streams and matching verification,
//! * [`static_matching`] — the static parallel maximal matching of Theorem 2.2
//!   plus the static-recompute engine adapter,
//! * [`seq_dynamic`] — sequential dynamic baselines,
//! * [`primitives`] — PRAM-style parallel building blocks (parallel dictionary,
//!   prefix sums, cost model, …).
//!
//! ## Quick start
//!
//! Engines are configured with the [`EngineBuilder`] and driven through the
//! [`MatchingEngine`] trait — batches are `&[Update]` slices and invalid batches
//! come back as typed errors instead of panics:
//!
//! ```
//! use pdmm::prelude::*;
//!
//! // Build a random graph workload delivered in batches of 64 updates.
//! let edges = pdmm::hypergraph::generators::gnm_graph(1_000, 4_000, 7, 0);
//! let workload = pdmm::hypergraph::streams::sliding_window(1_000, edges, 64, 16);
//!
//! // Configure the paper's engine; the same builder configures every baseline.
//! let builder = EngineBuilder::new(workload.num_vertices).seed(42);
//! let mut matcher = ParallelDynamicMatching::from_builder(&builder);
//!
//! // Maintain a maximal matching through the whole stream.
//! for batch in &workload.batches {
//!     matcher.apply_batch(batch).unwrap();
//! }
//! assert!(matcher.verify_invariants().is_ok());
//!
//! // Zero-copy query of the final matching.
//! let size = matcher.matching().count();
//! assert_eq!(size, matcher.matching_size());
//! ```
//!
//! Staged ingestion validates and deduplicates before anything is applied — the
//! shape a production ingest path needs:
//!
//! ```
//! use pdmm::prelude::*;
//!
//! let mut engine = pdmm::engine::build(EngineKind::Parallel, &EngineBuilder::new(4));
//! let mut session = BatchSession::new(&mut *engine);
//! session
//!     .stage(Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))))
//!     .unwrap();
//! // Exact duplicates are dropped, conflicting ones are typed errors.
//! assert!(!session
//!     .stage(Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))))
//!     .unwrap());
//! assert!(session
//!     .stage(Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(2), VertexId(3))))
//!     .is_err());
//! let report = session.commit().unwrap();
//! assert_eq!(report.batch_size, 1);
//! ```
//!
//! For a long-lived deployment, wrap any engine in an
//! [`service::EngineService`]: validated [`UpdateBatch`]es go through a bounded
//! submission queue, snapshots are read concurrently while batches commit, and
//! the journal replays to bit-identical state (the same example, with the full
//! story, lives in the [`service`] module docs):
//!
//! ```
//! use pdmm::prelude::*;
//!
//! let builder = EngineBuilder::new(4).seed(1);
//! let service = EngineService::new(pdmm::engine::build(EngineKind::Parallel, &builder));
//! let batch = UpdateBatch::new(vec![Update::Insert(HyperEdge::pair(
//!     EdgeId(0),
//!     VertexId(0),
//!     VertexId(1),
//! ))])
//! .unwrap();
//! service.submit(batch);
//! service.drain().unwrap();
//! assert_eq!(service.snapshot().size(), 1);
//!
//! let replayed =
//!     EngineService::replay(pdmm::engine::build(EngineKind::Parallel, &builder), &service.journal())
//!         .unwrap();
//! assert_eq!(replayed.snapshot().edge_ids(), service.snapshot().edge_ids());
//! ```
//!
//! To scale commits past one engine's lock, shard the vertex space: a
//! [`sharding::ShardedService`] routes every update to a deterministic owner
//! shard, drains all shards concurrently, and merges per-shard snapshots —
//! with cross-shard edges accounted explicitly (the full story lives in the
//! [`sharding`] module docs):
//!
//! ```
//! use pdmm::prelude::*;
//!
//! let builder = EngineBuilder::new(64).seed(1);
//! let engines = (0..4)
//!     .map(|_| pdmm::engine::build(EngineKind::Parallel, &builder))
//!     .collect();
//! let service = ShardedService::new(engines);
//! let workload = pdmm::hypergraph::streams::skewed_churn(64, 2, 40, 4, 16, 0.6, 2.0, 9);
//! for batch in &workload.batches {
//!     service.submit(batch.clone());
//! }
//! service.drain().unwrap();
//! let snap = service.snapshot();
//! assert!(snap.size() > 0);
//! // The globally valid matching: boundary arbitration awards every conflicted
//! // vertex to one shard, evicts the losers and repairs around them, so the
//! // arbitrated view passes the same validity+maximality audit as one engine.
//! let arbitrated = snap.arbitrated_matching();
//! assert!(arbitrated.conflicted_vertices().is_empty());
//! assert!(arbitrated.report().retained() <= 1.0);
//! // Rebuild all four shards bit-identically from the shard-tagged journal.
//! let engines = (0..4)
//!     .map(|_| pdmm::engine::build(EngineKind::Parallel, &builder))
//!     .collect();
//! let replayed = ShardedService::replay(engines, &service.journal()).unwrap();
//! assert_eq!(replayed.snapshot().edge_ids(), snap.edge_ids());
//! ```
//!
//! [`UpdateBatch`]: prelude::UpdateBatch

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod engine;

pub use pdmm_hypergraph::checkpoint;
pub use pdmm_hypergraph::net;
pub use pdmm_hypergraph::service;
pub use pdmm_hypergraph::sharding;

pub use pdmm_core as core;
pub use pdmm_hypergraph as hypergraph;
pub use pdmm_primitives as primitives;
pub use pdmm_seq_dynamic as seq_dynamic;
pub use pdmm_static as static_matching;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::engine::{
        BatchError, BatchReport, BatchSession, EngineBuilder, EngineKind, EngineMetrics,
        IngestReport, MatchingEngine, RejectedUpdate, ValidatedBatch,
    };
    pub use pdmm_core::{Config, ParallelDynamicMatching};
    pub use pdmm_hypergraph::graph::DynamicHypergraph;
    pub use pdmm_hypergraph::matching::{verify_maximality, verify_validity};
    pub use pdmm_hypergraph::net::{
        serve, AdmissionPolicy, DrainMode, FairnessPolicy, IoModel, Response, ServerConfig,
        ServerHandle, ServerStats,
    };
    pub use pdmm_hypergraph::service::{EngineService, MatchingSnapshot};
    pub use pdmm_hypergraph::sharding::{
        ArbitratedMatching, ArbitrationReport, Partitioner, ShardedService, ShardedSnapshot,
    };
    pub use pdmm_hypergraph::streams::Workload;
    pub use pdmm_hypergraph::types::{EdgeId, HyperEdge, ShardId, Update, UpdateBatch, VertexId};
}

pub use prelude::{Config, EngineBuilder, EngineKind, MatchingEngine, ParallelDynamicMatching};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let mut matcher = ParallelDynamicMatching::from_builder(&EngineBuilder::new(4));
        matcher
            .apply_batch(&[Update::Insert(HyperEdge::pair(
                EdgeId(0),
                VertexId(0),
                VertexId(1),
            ))])
            .unwrap();
        assert_eq!(matcher.matching_size(), 1);
    }
}
