//! # pdmm — Parallel Dynamic Maximal Matching
//!
//! A from-scratch Rust reproduction of *Parallel Dynamic Maximal Matching*
//! (Ghaffari & Trygub, SPAA 2024): a randomized batch-dynamic algorithm that
//! maintains a maximal matching of a rank-`r` hypergraph under arbitrary batches of
//! hyperedge insertions and deletions, in polylogarithmic depth per batch and
//! polylogarithmic (amortized, `poly(r)`) work per update.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] ([`ParallelDynamicMatching`]) — the paper's algorithm,
//! * [`hypergraph`] — the dynamic hypergraph substrate, workload generators,
//!   update streams and matching verification,
//! * [`static_matching`] — the static parallel maximal matching of Theorem 2.2,
//! * [`seq_dynamic`] — sequential dynamic baselines,
//! * [`primitives`] — PRAM-style parallel building blocks (parallel dictionary,
//!   prefix sums, cost model, …).
//!
//! ```
//! use pdmm::prelude::*;
//!
//! // Build a random graph workload delivered in batches of 64 updates.
//! let edges = pdmm::hypergraph::generators::gnm_graph(1_000, 4_000, 7, 0);
//! let workload = pdmm::hypergraph::streams::sliding_window(1_000, edges, 64, 16);
//!
//! // Maintain a maximal matching through the whole stream.
//! let mut matcher = ParallelDynamicMatching::new(workload.num_vertices, Config::for_graphs(42));
//! for batch in &workload.batches {
//!     matcher.apply_batch(batch);
//! }
//! assert!(matcher.verify_invariants().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use pdmm_core as core;
pub use pdmm_hypergraph as hypergraph;
pub use pdmm_primitives as primitives;
pub use pdmm_seq_dynamic as seq_dynamic;
pub use pdmm_static as static_matching;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use pdmm_core::{BatchReport, Config, ParallelDynamicMatching};
    pub use pdmm_hypergraph::dynamic::DynamicMatcher;
    pub use pdmm_hypergraph::graph::DynamicHypergraph;
    pub use pdmm_hypergraph::matching::{verify_maximality, verify_validity};
    pub use pdmm_hypergraph::streams::Workload;
    pub use pdmm_hypergraph::types::{EdgeId, HyperEdge, Update, UpdateBatch, VertexId};
}

pub use prelude::{Config, ParallelDynamicMatching};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let mut matcher = ParallelDynamicMatching::new(4, Config::for_graphs(0));
        matcher.apply_batch(&vec![Update::Insert(HyperEdge::pair(
            EdgeId(0),
            VertexId(0),
            VertexId(1),
        ))]);
        assert_eq!(matcher.matching_size(), 1);
    }
}
