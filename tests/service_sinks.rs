//! Serve-path satellite suite: journal sinks, lossy drains and snapshot
//! throttling on `pdmm::service::EngineService`.
//!
//! * **`drain_lossy`**: dirty streams (unknown deletions, conflicting ids
//!   across batches) are skipped and reported instead of poisoning the drain;
//!   the journal records exactly the surviving subsets, so replay is still
//!   bit-identical;
//! * **`FileJournal`**: the file-backed sink (flush-on-commit, size-based
//!   rotation) produces byte-identical journal contents to the in-memory
//!   sink, across rotation boundaries, and replays cleanly;
//! * **`with_snapshot_every`**: a throttled service publishes snapshots only
//!   at period boundaries (plus the end of each drain), and concurrent
//!   readers still only ever observe committed prefixes, monotonically;
//! * **fault injection**: an injected I/O failure during `commit` surfaces
//!   per the documented sink policy — a panic, not a silently diverging
//!   journal — and leaves the on-disk segments parseable.

use pdmm::checkpoint::FaultSink;
use pdmm::engine;
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::prelude::*;
use pdmm::service::{FileJournal, MemoryJournal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

fn serve_workload() -> Workload {
    streams::random_churn(100, 2, 160, 12, 30, 0.5, 41)
}

fn parallel_service(workload: &Workload, seed: u64) -> EngineService {
    let builder = EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(seed);
    EngineService::new(engine::build(EngineKind::Parallel, &builder))
}

#[test]
fn drain_lossy_skips_poison_and_keeps_the_journal_replayable() {
    let workload = serve_workload();
    for kind in EngineKind::ALL {
        let builder = EngineBuilder::new(workload.num_vertices)
            .rank(workload.rank.max(2))
            .seed(9);
        let service = EngineService::new(engine::build(kind, &builder));
        let mut rejected = 0usize;
        let mut committed = 0usize;
        for batch in &workload.batches {
            service.submit(batch.clone());
            // Unknown deletions are context-free-valid (they pass
            // `UpdateBatch::new`) but invalid against the engine: a strict
            // drain would stop here, the lossy drain must not.
            service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(9_999_999))]).unwrap());
            let reports = service.drain_lossy();
            committed += reports.len();
            rejected += reports.iter().map(|r| r.rejected.len()).sum::<usize>();
            for report in &reports {
                for rejection in &report.rejected {
                    assert_eq!(
                        rejection.error,
                        BatchError::UnknownDeletion {
                            id: EdgeId(9_999_999)
                        },
                        "{kind}"
                    );
                }
            }
        }
        assert_eq!(committed, 2 * workload.batches.len(), "{kind}");
        assert_eq!(rejected, workload.batches.len(), "{kind}");

        // The clean twin sees the identical stream minus the poison: same
        // matching, same journal (survivor subsets only).
        let twin = EngineService::new(engine::build(kind, &builder));
        for batch in &workload.batches {
            twin.submit(batch.clone());
            twin.drain().unwrap();
        }
        assert_eq!(
            service.snapshot().edge_ids(),
            twin.snapshot().edge_ids(),
            "{kind}"
        );
        assert_eq!(service.journal(), twin.journal(), "{kind}");

        // And the lossy journal replays bit-identically on a fresh engine.
        let replayed =
            EngineService::replay(engine::build(kind, &builder), &service.journal()).unwrap();
        assert_eq!(
            replayed.snapshot().edge_ids(),
            service.snapshot().edge_ids(),
            "{kind}"
        );
    }
}

#[test]
fn drain_lossy_reports_mixed_batches_update_by_update() {
    let builder = EngineBuilder::new(8).seed(1);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1)]).unwrap());
    service.drain().unwrap();
    // A batch mixing a live-id conflict, a fine insertion and an unknown
    // deletion: only the fine insertion survives.
    service.submit(
        UpdateBatch::new(vec![
            pair(0, 2, 3),
            pair(1, 4, 5),
            Update::Delete(EdgeId(7)),
        ])
        .unwrap(),
    );
    let reports = service.drain_lossy();
    assert_eq!(reports.len(), 1);
    let report = &reports[0];
    assert_eq!(report.batch.batch_size, 1);
    assert_eq!(report.rejected.len(), 2);
    assert_eq!(report.offered(), 3);
    assert_eq!(
        report.rejected[0].error,
        BatchError::DuplicateEdgeId { id: EdgeId(0) }
    );
    assert_eq!(
        report.rejected[1].error,
        BatchError::UnknownDeletion { id: EdgeId(7) }
    );
    let snap = service.snapshot();
    assert_eq!(snap.edge_ids(), vec![EdgeId(0), EdgeId(1)]);
    // A batch rejected in its entirety still commits (empty, unjournaled).
    service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(42))]).unwrap());
    let reports = service.drain_lossy();
    assert_eq!(reports[0].batch.batch_size, 0);
    assert_eq!(service.snapshot().committed_batches(), 3);
}

#[test]
fn file_journal_matches_memory_journal_and_rotates() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("service_sinks_file_journal.log");
    let workload = serve_workload();

    let builder = EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(17);
    // A tiny rotation threshold so the workload crosses many segments.
    let file_backed = EngineService::new(engine::build(EngineKind::Parallel, &builder))
        .with_journal(Box::new(
            FileJournal::create(&path).unwrap().with_rotate_at(256),
        ));
    let in_memory = EngineService::new(engine::build(EngineKind::Parallel, &builder))
        .with_journal(Box::new(MemoryJournal::new()));
    for batch in &workload.batches {
        file_backed.submit(batch.clone());
        file_backed.drain().unwrap();
        in_memory.submit(batch.clone());
        in_memory.drain().unwrap();
    }

    // Byte-identical journals regardless of the sink, across rotations.
    let journal = file_backed.journal();
    assert_eq!(journal, in_memory.journal());
    // Rotation actually happened and left numbered segments behind.
    let mut first_segment = path.clone().into_os_string();
    first_segment.push(".1");
    assert!(
        std::path::Path::new(&first_segment).exists(),
        "expected at least one rotated segment"
    );
    // The concatenated segments replay to the same state.
    let replayed =
        EngineService::replay(engine::build(EngineKind::Parallel, &builder), &journal).unwrap();
    assert_eq!(
        replayed.snapshot().edge_ids(),
        file_backed.snapshot().edge_ids()
    );
    assert_eq!(
        replayed.snapshot().committed_batches(),
        file_backed.snapshot().committed_batches()
    );

    // A no-rotation, no-flush file journal agrees too.
    let relaxed_path = dir.join("service_sinks_file_journal_relaxed.log");
    let relaxed =
        EngineService::new(engine::build(EngineKind::Parallel, &builder)).with_journal(Box::new(
            FileJournal::create(&relaxed_path)
                .unwrap()
                .with_flush_on_commit(false),
        ));
    for batch in &workload.batches {
        relaxed.submit(batch.clone());
        relaxed.drain().unwrap();
    }
    assert_eq!(relaxed.journal(), journal);
}

#[test]
fn file_journal_create_clears_stale_segments_from_a_previous_run() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("service_sinks_stale_segments.log");
    let segment = |seq: usize| {
        let mut name = path.clone().into_os_string();
        name.push(format!(".{seq}"));
        std::path::PathBuf::from(name)
    };
    let workload = serve_workload();
    let builder = EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(21);

    // Run 1 rotates aggressively and leaves numbered segments on disk.
    let first = EngineService::new(engine::build(EngineKind::Parallel, &builder)).with_journal(
        Box::new(FileJournal::create(&path).unwrap().with_rotate_at(128)),
    );
    for batch in &workload.batches {
        first.submit(batch.clone());
        first.drain().unwrap();
    }
    assert!(segment(1).exists() && segment(2).exists());

    // Run 2 at the same path must clear them, or a restart reading the
    // segment files back would replay the previous run's batches.
    let second = EngineService::new(engine::build(EngineKind::Parallel, &builder))
        .with_journal(Box::new(FileJournal::create(&path).unwrap()));
    assert!(!segment(1).exists(), "stale segments must be removed");
    second.submit(workload.batches[0].clone());
    second.drain().unwrap();
    let journal = second.journal();
    assert_eq!(
        io_batches(&journal),
        vec![workload.batches[0].clone()],
        "the new journal holds only the new run's history"
    );
}

fn io_batches(text: &str) -> Vec<UpdateBatch> {
    pdmm::hypergraph::io::batches_from_string(text).unwrap()
}

#[test]
fn an_injected_commit_failure_panics_and_leaves_the_journal_parseable() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("service_sinks_fault_commit.log");
    let workload = serve_workload();
    let batches: Vec<UpdateBatch> = workload
        .batches
        .iter()
        .filter(|b| !b.is_empty())
        .cloned()
        .collect();
    let builder = EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(47);
    // The third commit fails.  Sinks are infallible by contract: losing the
    // recovery log silently would be worse than crashing the serve loop, so
    // the documented policy is a panic.
    let service =
        EngineService::new(engine::build(EngineKind::Parallel, &builder)).with_journal(Box::new(
            FaultSink::fail_commit(Box::new(FileJournal::create(&path).unwrap()), 3),
        ));
    for batch in &batches[..2] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    service.submit(batches[2].clone());
    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| service.drain()))
        .expect_err("the injected commit failure must surface as a panic");
    let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(message.contains("injected"), "{message}");

    // The failing commit's append already landed (write, then barrier), so
    // the on-disk journal is parseable and every block is complete: the
    // crash-consistent state a restart would recover from.
    let salvaged = FileJournal::salvage(&path).unwrap();
    let parsed = pdmm::hypergraph::io::batches_from_string(&salvaged).unwrap();
    assert_eq!(parsed, batches[..3].to_vec());
    let blocks = pdmm::hypergraph::io::journal_blocks(&salvaged);
    assert_eq!(blocks.len(), 3);
    assert!(blocks
        .iter()
        .all(|b| pdmm::hypergraph::io::block_is_committed(b)));
}

#[test]
fn drain_error_carries_the_committed_reports() {
    let service = parallel_service(&serve_workload(), 8);
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1)]).unwrap());
    service.submit(UpdateBatch::new(vec![pair(1, 2, 3), pair(2, 4, 5)]).unwrap());
    service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(9))]).unwrap());
    let err = service.drain().unwrap_err();
    assert_eq!(err.committed, 2);
    assert_eq!(err.reports.len(), 2);
    assert_eq!(err.reports[0].batch_size, 1);
    assert_eq!(err.reports[1].batch_size, 2);
    assert_eq!(err.reports[1].matching_size, 3);
}

#[test]
fn snapshot_throttling_still_only_exposes_committed_prefixes() {
    let workload = serve_workload();
    const EVERY: u64 = 4;
    let total = workload.batches.len() as u64;

    // Ground truth: the expected matching after every committed prefix.
    let expected: HashMap<u64, Vec<EdgeId>> = {
        let twin = parallel_service(&workload, 29);
        let mut by_prefix = HashMap::new();
        by_prefix.insert(0u64, Vec::new());
        for (i, batch) in workload.batches.iter().enumerate() {
            twin.submit(batch.clone());
            twin.drain().unwrap();
            by_prefix.insert(i as u64 + 1, twin.snapshot().edge_ids());
        }
        by_prefix
    };

    let service = parallel_service(&workload, 29).with_snapshot_every(EVERY);
    for batch in &workload.batches {
        service.submit(batch.clone());
    }
    let done = AtomicBool::new(false);
    let observations = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut seen: Vec<(u64, Vec<EdgeId>)> = Vec::new();
            let mut last = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = service.snapshot();
                assert!(
                    snap.committed_batches() >= last,
                    "snapshots must advance monotonically"
                );
                last = snap.committed_batches();
                seen.push((last, snap.edge_ids()));
            }
            seen
        });
        service.drain().unwrap();
        done.store(true, Ordering::Release);
        reader.join().expect("reader thread panicked")
    });

    for (committed, edge_ids) in observations {
        assert!(
            committed % EVERY == 0 || committed == total,
            "observed a snapshot at {committed} batches, not a throttle boundary"
        );
        assert_eq!(
            &edge_ids, &expected[&committed],
            "snapshot at {committed} batches is not that committed prefix"
        );
    }
    // The end-of-drain publish always lands, even off-period.
    let last = service.snapshot();
    assert_eq!(last.committed_batches(), total);
    assert_eq!(&last.edge_ids(), &expected[&total]);

    // The throttle changes when snapshots publish, not what commits: journal
    // and final state equal the unthrottled twin's.
    let twin = parallel_service(&workload, 29);
    for batch in &workload.batches {
        twin.submit(batch.clone());
    }
    twin.drain().unwrap();
    assert_eq!(service.journal(), twin.journal());
    assert_eq!(service.snapshot().edge_ids(), twin.snapshot().edge_ids());
}

#[test]
fn snapshot_throttling_publishes_before_a_poison_error_returns() {
    let service = parallel_service(&serve_workload(), 3).with_snapshot_every(1000);
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1)]).unwrap());
    service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(77))]).unwrap());
    service.submit(UpdateBatch::new(vec![pair(1, 2, 3)]).unwrap());
    let err = service.drain().unwrap_err();
    assert_eq!(err.committed, 1);
    // The batch committed before the poison is visible despite the throttle.
    let snap = service.snapshot();
    assert_eq!(snap.committed_batches(), 1);
    assert_eq!(snap.edge_ids(), vec![EdgeId(0)]);
    // The tail drains normally afterwards.
    service.drain().unwrap();
    assert_eq!(service.snapshot().committed_batches(), 2);
}
