//! Trait-conformance suite: every [`MatchingEngine`] in the workspace — built
//! through the same [`EngineBuilder`] and fed through the same staged
//! batch-session path — must behave identically at the API level on identical
//! workloads:
//!
//! * every batch is applied without error and reported consistently,
//! * the matching is always a valid, *maximal* matching of the ground-truth graph,
//! * matching sizes agree with the recompute baseline within the factor the
//!   theory allows (any two maximal matchings are within `r` of each other),
//! * invalid batches are rejected with the *same* typed [`BatchError`] by every
//!   engine, atomically (no partial application),
//! * zero-copy queries, collected ids, and reported sizes are mutually
//!   consistent, and `verify()` passes at every step.

use pdmm::engine::{self, BatchError, BatchSession, MatchingEngine};
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::hypergraph::{generators, verify_maximality, verify_validity};
use pdmm::prelude::*;

/// The generated workloads every engine is driven through, with the rank each
/// one needs.
fn conformance_workloads() -> Vec<Workload> {
    let mut workloads = vec![
        streams::insert_only(80, generators::gnm_graph(80, 300, 3, 0), 40),
        streams::sliding_window(100, generators::gnm_graph(100, 400, 5, 0), 50, 3),
        streams::random_churn(120, 2, 250, 12, 40, 0.5, 9),
        streams::insert_then_teardown(90, generators::gnm_graph(90, 350, 7, 0), 45, 11),
        streams::hub_churn(150, 4, 12, 50, 13),
        streams::random_churn(60, 3, 120, 10, 30, 0.45, 15),
        streams::random_churn(50, 4, 80, 8, 25, 0.5, 17),
    ];
    for w in &mut workloads {
        assert!(streams::validate_workload(w), "bad workload {}", w.name);
    }
    workloads
}

fn engines_for(workload: &Workload, seed: u64) -> Vec<Box<dyn MatchingEngine + Send>> {
    engine::build_all(
        &EngineBuilder::new(workload.num_vertices)
            .rank(workload.rank.max(2))
            .seed(seed),
    )
}

#[test]
fn every_engine_stays_valid_and_maximal_on_every_workload() {
    for workload in conformance_workloads() {
        for mut engine in engines_for(&workload, 1) {
            let name = engine.name();
            let mut truth = DynamicHypergraph::new(workload.num_vertices);
            for (i, batch) in workload.batches.iter().enumerate() {
                truth.apply_batch(batch);
                // Feed through the staged session path (the production ingest shape).
                let mut session = BatchSession::new(&mut *engine);
                let staged = session
                    .stage_all(batch.iter().cloned())
                    .unwrap_or_else(|e| {
                        panic!("{name} rejected batch {i} of {}: {e}", workload.name)
                    });
                assert_eq!(staged, batch.len(), "workloads contain no duplicates");
                let report = session.commit().expect("staged batches commit cleanly");

                let ids = engine.matching_ids();
                assert_eq!(report.batch_size, batch.len());
                assert_eq!(report.matching_size, ids.len());
                assert_eq!(
                    verify_validity(&truth, &ids),
                    Ok(()),
                    "{} produced an invalid matching after batch {i} of {}",
                    engine.name(),
                    workload.name
                );
                assert_eq!(
                    verify_maximality(&truth, &ids),
                    Ok(()),
                    "{} broke maximality after batch {i} of {}",
                    engine.name(),
                    workload.name
                );
                engine
                    .verify()
                    .unwrap_or_else(|e| panic!("{} failed self-verification: {e}", engine.name()));
            }
            if truth.num_edges() == 0 {
                assert_eq!(
                    engine.matching_size(),
                    0,
                    "{} kept a matching on an empty graph",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn matching_sizes_agree_with_the_recompute_baseline_within_rank() {
    for workload in conformance_workloads() {
        let rank = workload.rank.max(2);
        let mut engines = engines_for(&workload, 3);
        for engine in &mut engines {
            workload
                .drive(engine.as_mut())
                .unwrap_or_else(|e| panic!("{} rejected {}: {e}", engine.name(), workload.name));
        }
        let recompute_size = engines
            .iter()
            .find(|e| e.name() == "recompute-from-scratch")
            .expect("recompute baseline present")
            .matching_size();
        for engine in &engines {
            let size = engine.matching_size();
            // Any two maximal matchings of a rank-r hypergraph are within a
            // factor r of each other (each is a 1/r approximation of maximum).
            assert!(
                size * rank >= recompute_size && recompute_size * rank >= size,
                "{} matching size {size} vs recompute {recompute_size} exceeds factor {rank} on {}",
                engine.name(),
                workload.name
            );
            if recompute_size == 0 {
                assert_eq!(
                    size,
                    0,
                    "{} kept a matching on an empty graph",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn every_engine_rejects_the_same_invalid_batches_with_the_same_errors() {
    let builder = EngineBuilder::new(6).rank(2).seed(5);
    for kind in EngineKind::ALL {
        let mut engine = engine::build(kind, &builder);
        let name = engine.name();
        engine
            .apply_batch(&[
                Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))),
                Update::Insert(HyperEdge::pair(EdgeId(1), VertexId(2), VertexId(3))),
            ])
            .unwrap();
        let size_before = engine.matching_size();

        // Unknown deletion.
        assert_eq!(
            engine.apply_batch(&[Update::Delete(EdgeId(42))]),
            Err(BatchError::UnknownDeletion { id: EdgeId(42) }),
            "{name}"
        );
        // Duplicate id against a live edge.
        assert_eq!(
            engine.apply_batch(&[Update::Insert(HyperEdge::pair(
                EdgeId(0),
                VertexId(4),
                VertexId(5)
            ))]),
            Err(BatchError::DuplicateEdgeId { id: EdgeId(0) }),
            "{name}"
        );
        // Duplicate id within one batch.
        assert_eq!(
            engine.apply_batch(&[
                Update::Insert(HyperEdge::pair(EdgeId(9), VertexId(4), VertexId(5))),
                Update::Insert(HyperEdge::pair(EdgeId(9), VertexId(2), VertexId(3))),
            ]),
            Err(BatchError::DuplicateEdgeId { id: EdgeId(9) }),
            "{name}"
        );
        // Double deletion in one batch.
        assert_eq!(
            engine.apply_batch(&[Update::Delete(EdgeId(0)), Update::Delete(EdgeId(0))]),
            Err(BatchError::DuplicateDeletion { id: EdgeId(0) }),
            "{name}"
        );
        // Rank violation (builder capped the rank at 2).
        assert_eq!(
            engine.apply_batch(&[Update::Insert(HyperEdge::new(
                EdgeId(9),
                vec![VertexId(0), VertexId(1), VertexId(2)],
            ))]),
            Err(BatchError::RankExceeded {
                id: EdgeId(9),
                rank: 3,
                max_rank: 2
            }),
            "{name}"
        );
        // Endpoint out of range.
        assert_eq!(
            engine.apply_batch(&[Update::Insert(HyperEdge::pair(
                EdgeId(9),
                VertexId(0),
                VertexId(77)
            ))]),
            Err(BatchError::VertexOutOfRange {
                id: EdgeId(9),
                vertex: VertexId(77),
                num_vertices: 6
            }),
            "{name}"
        );
        // Insert-then-delete of the same id in one batch (deletions are
        // processed first, so the target does not exist yet).
        assert_eq!(
            engine.apply_batch(&[
                Update::Insert(HyperEdge::pair(EdgeId(9), VertexId(4), VertexId(5))),
                Update::Delete(EdgeId(9)),
            ]),
            Err(BatchError::UnknownDeletion { id: EdgeId(9) }),
            "{name}"
        );

        // Rejection is atomic: a valid prefix of a bad batch must not leak.
        assert_eq!(
            engine.apply_batch(&[
                Update::Insert(HyperEdge::pair(EdgeId(7), VertexId(4), VertexId(5))),
                Update::Delete(EdgeId(42)),
            ]),
            Err(BatchError::UnknownDeletion { id: EdgeId(42) }),
            "{name}"
        );
        assert!(
            !engine.contains_edge(EdgeId(7)),
            "{name} partially applied a bad batch"
        );
        assert_eq!(engine.matching_size(), size_before, "{name}");
        engine.verify().unwrap();

        // And delete-then-reinsert of the same id in one batch is legal.
        engine
            .apply_batch(&[
                Update::Delete(EdgeId(0)),
                Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(4), VertexId(5))),
            ])
            .unwrap_or_else(|e| panic!("{name} rejected a legal delete+reinsert batch: {e}"));
        assert!(engine.contains_edge(EdgeId(0)), "{name}");
    }
}

/// The engines that consume `EngineBuilder::threads` (the others are strictly
/// sequential and ignore it).
const POOLED_KINDS: [EngineKind; 2] = [EngineKind::Parallel, EngineKind::RecomputeSequential];

#[test]
fn matchings_are_identical_at_1_2_and_8_threads() {
    // The thread pool must never change *what* is computed, only how fast:
    // all randomness is seed-derived and every parallel combiner is
    // order-preserving or associative, so for a fixed seed the per-batch
    // matchings must be bit-identical at any worker count.
    //
    // The standard conformance workloads sit below the sequential-fallback
    // thresholds of the parallel primitives (2^10–2^12 elements), so they
    // alone would pass vacuously; the large workload pushes batches of 4096
    // updates through the engines so Luby (>2048 edges), the parallel
    // dictionary (>2^10), and the compaction/prefix-sum paths (>2^11/2^12)
    // genuinely execute on the pool at every thread count.
    let mut workloads = conformance_workloads();
    workloads.push(streams::insert_then_teardown(
        4096,
        generators::gnm_graph(4096, 16384, 19, 0),
        4096,
        21,
    ));
    for workload in workloads {
        for kind in POOLED_KINDS {
            let mut reference: Option<Vec<Vec<EdgeId>>> = None;
            for threads in [1usize, 2, 8] {
                let builder = EngineBuilder::new(workload.num_vertices)
                    .rank(workload.rank.max(2))
                    .seed(7)
                    .threads(threads);
                let mut engine = engine::build(kind, &builder);
                let mut matchings: Vec<Vec<EdgeId>> = Vec::new();
                for batch in &workload.batches {
                    engine.apply_batch(batch).unwrap_or_else(|e| {
                        panic!(
                            "{kind} rejected a batch of {} at {threads} threads: {e}",
                            workload.name
                        )
                    });
                    let mut ids = engine.matching_ids();
                    ids.sort_unstable();
                    matchings.push(ids);
                }
                match &reference {
                    None => reference = Some(matchings),
                    Some(expected) => assert_eq!(
                        expected, &matchings,
                        "{kind} diverged at {threads} threads on {}",
                        workload.name
                    ),
                }
            }
        }
    }
}

#[test]
fn typed_errors_are_identical_at_1_2_and_8_threads() {
    for kind in POOLED_KINDS {
        for threads in [1usize, 2, 8] {
            let builder = EngineBuilder::new(6).rank(2).seed(5).threads(threads);
            let mut engine = engine::build(kind, &builder);
            engine
                .apply_batch(&[Update::Insert(HyperEdge::pair(
                    EdgeId(0),
                    VertexId(0),
                    VertexId(1),
                ))])
                .unwrap();
            assert_eq!(
                engine.apply_batch(&[Update::Delete(EdgeId(42))]),
                Err(BatchError::UnknownDeletion { id: EdgeId(42) }),
                "{kind} at {threads} threads"
            );
            assert_eq!(
                engine.apply_batch(&[Update::Insert(HyperEdge::pair(
                    EdgeId(0),
                    VertexId(2),
                    VertexId(3)
                ))]),
                Err(BatchError::DuplicateEdgeId { id: EdgeId(0) }),
                "{kind} at {threads} threads"
            );
            assert_eq!(
                engine.apply_batch(&[Update::Insert(HyperEdge::new(
                    EdgeId(9),
                    vec![VertexId(0), VertexId(1), VertexId(2)],
                ))]),
                Err(BatchError::RankExceeded {
                    id: EdgeId(9),
                    rank: 3,
                    max_rank: 2
                }),
                "{kind} at {threads} threads"
            );
            // Rejection stays atomic under a bounded pool.
            assert_eq!(engine.matching_size(), 1, "{kind} at {threads} threads");
            engine.verify().unwrap();
        }
    }
}

#[test]
fn zero_copy_iterator_collected_ids_and_size_agree() {
    let w = streams::random_churn(100, 2, 200, 8, 30, 0.5, 21);
    for mut engine in engines_for(&w, 7) {
        w.drive(engine.as_mut()).unwrap();
        let via_iter: usize = engine.matching().count();
        let collected = engine.matching_ids();
        assert_eq!(via_iter, collected.len(), "{}", engine.name());
        assert_eq!(via_iter, engine.matching_size(), "{}", engine.name());
        // The iterator yields exactly the collected ids (order-insensitively).
        let mut a: Vec<EdgeId> = engine.matching().collect();
        let mut b = collected;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{}", engine.name());
        // Every reported matched edge is live.
        assert!(
            engine.matching().all(|id| engine.contains_edge(id)),
            "{} reports a dead matched edge",
            engine.name()
        );
    }
}

#[test]
fn metrics_count_updates_uniformly_across_engines() {
    let w = streams::random_churn(80, 2, 150, 10, 25, 0.5, 23);
    let total = w.total_updates() as u64;
    let insertions = w.total_insertions() as u64;
    for mut engine in engines_for(&w, 9) {
        let reports = w.drive(engine.as_mut()).unwrap();
        let metrics = engine.metrics();
        assert_eq!(metrics.batches, w.batches.len() as u64, "{}", engine.name());
        assert_eq!(metrics.updates, total, "{}", engine.name());
        assert_eq!(metrics.insertions, insertions, "{}", engine.name());
        assert_eq!(metrics.deletions, total - insertions, "{}", engine.name());
        assert!(metrics.work > 0, "{}", engine.name());
        let report_sum: u64 = reports.iter().map(|r| r.batch_size as u64).sum();
        assert_eq!(report_sum, total, "{}", engine.name());
    }
}

#[test]
fn rebuilt_flag_is_pinned_per_engine() {
    // The recompute engines throw the matching away and rebuild it on every
    // batch, so they must say so; the incremental-repair baselines never
    // rebuild; the parallel algorithm rebuilds only on `N`-doubling batches
    // (suppressed here by a generous capacity hint).
    let w = streams::random_churn(60, 2, 120, 10, 25, 0.5, 19);
    for kind in EngineKind::ALL {
        let rebuilds_every_batch = matches!(
            kind,
            EngineKind::RecomputeSequential | EngineKind::StaticRecompute
        );
        let builder = EngineBuilder::new(w.num_vertices)
            .rank(2)
            .seed(3)
            .capacity_hint(10 * w.total_updates());
        let mut engine = engine::build(kind, &builder);
        for batch in &w.batches {
            let report = engine.apply_batch(batch).unwrap();
            assert_eq!(
                report.rebuilt,
                rebuilds_every_batch,
                "{} misreports the rebuilt flag",
                engine.name()
            );
            assert_eq!(
                report.metrics.rebuilds,
                u64::from(rebuilds_every_batch),
                "{} misreports the per-batch rebuild count",
                engine.name()
            );
        }
        let expected_rebuilds = if rebuilds_every_batch {
            w.batches.len() as u64
        } else {
            0
        };
        assert_eq!(
            engine.metrics().rebuilds,
            expected_rebuilds,
            "{} miscounts lifetime rebuilds",
            engine.name()
        );
    }
}

#[test]
fn empty_batches_are_counter_neutral_noops_on_every_engine() {
    let builder = EngineBuilder::new(6).rank(2).seed(5);
    for kind in EngineKind::ALL {
        let mut engine = engine::build(kind, &builder);
        let name = engine.name();
        let report = engine.apply_batch(&[]).unwrap();
        assert_eq!(report, BatchReport::default(), "{name}");
        assert_eq!(engine.metrics(), EngineMetrics::default(), "{name}");

        engine
            .apply_batch(&[Update::Insert(HyperEdge::pair(
                EdgeId(0),
                VertexId(0),
                VertexId(1),
            ))])
            .unwrap();
        let before = engine.metrics();
        let report = engine.apply_batch(&[]).unwrap();
        assert_eq!(report.batch_size, 0, "{name}");
        assert_eq!(report.matching_size, 1, "{name}");
        assert_eq!(report.metrics, EngineMetrics::default(), "{name}");
        assert_eq!(
            engine.metrics(),
            before,
            "{name}: an empty batch mutated counters"
        );
        engine.verify().unwrap();
    }
}

#[test]
fn per_batch_metric_deltas_sum_to_lifetime_metrics() {
    let w = streams::random_churn(70, 2, 140, 10, 25, 0.5, 27);
    for mut engine in engines_for(&w, 13) {
        let mut sum = EngineMetrics::default();
        for batch in &w.batches {
            let report = engine.apply_batch(batch).unwrap();
            assert_eq!(report.metrics.batches, 1, "{}", engine.name());
            assert_eq!(
                report.metrics.updates,
                batch.len() as u64,
                "{}",
                engine.name()
            );
            assert_eq!(report.metrics.work, report.work, "{}", engine.name());
            assert_eq!(report.metrics.depth, report.depth, "{}", engine.name());
            sum.merge(&report.metrics);
        }
        assert_eq!(
            sum,
            engine.metrics(),
            "{}: per-batch deltas drift from lifetime metrics",
            engine.name()
        );
    }
}

#[test]
fn lossy_ingest_commits_the_same_surviving_subset_with_identical_rejections() {
    // A dirty ingest stream: valid updates interleaved with every error kind.
    // Every engine must commit exactly the same surviving subset and report
    // exactly the same per-update rejections, in the same order.
    let dirty: Vec<Update> = vec![
        Update::Insert(HyperEdge::pair(EdgeId(2), VertexId(4), VertexId(5))), // 0: ok
        Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(2), VertexId(3))), // 1: live id
        Update::Delete(EdgeId(42)),                                           // 2: unknown
        Update::Delete(EdgeId(0)),                                            // 3: ok
        Update::Delete(EdgeId(0)),                                            // 4: exact dup
        Update::Insert(HyperEdge::pair(EdgeId(2), VertexId(4), VertexId(5))), // 5: exact dup
        Update::Insert(HyperEdge::pair(EdgeId(2), VertexId(0), VertexId(5))), // 6: conflict
        Update::Insert(HyperEdge::new(
            EdgeId(9),
            vec![VertexId(0), VertexId(1), VertexId(2)],
        )), // 7: rank
        Update::Insert(HyperEdge::pair(EdgeId(9), VertexId(0), VertexId(77))), // 8: range
        Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(2), VertexId(3))), // 9: reinsert, ok
        Update::Delete(EdgeId(1)),                                            // 10: ok
    ];
    let expected_rejections: Vec<(usize, BatchError)> = vec![
        (1, BatchError::DuplicateEdgeId { id: EdgeId(0) }),
        (2, BatchError::UnknownDeletion { id: EdgeId(42) }),
        (6, BatchError::DuplicateEdgeId { id: EdgeId(2) }),
        (
            7,
            BatchError::RankExceeded {
                id: EdgeId(9),
                rank: 3,
                max_rank: 2,
            },
        ),
        (
            8,
            BatchError::VertexOutOfRange {
                id: EdgeId(9),
                vertex: VertexId(77),
                num_vertices: 8,
            },
        ),
    ];
    let builder = EngineBuilder::new(8).rank(2).seed(11);
    for kind in EngineKind::ALL {
        let mut engine = engine::build(kind, &builder);
        let name = engine.name();
        // Prime the engines with two live edges so live-id and deletion cases fire.
        engine
            .apply_batch(&[
                Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))),
                Update::Insert(HyperEdge::pair(EdgeId(1), VertexId(2), VertexId(3))),
            ])
            .unwrap();
        let report = engine.apply_batch_lossy(&dirty).unwrap();
        assert_eq!(report.batch.batch_size, 4, "{name}");
        assert_eq!(report.deduplicated, 2, "{name}");
        assert_eq!(report.offered(), dirty.len(), "{name}");
        let got: Vec<(usize, BatchError)> = report
            .rejected
            .iter()
            .map(|r| (r.index, r.error.clone()))
            .collect();
        assert_eq!(got, expected_rejections, "{name}");
        // The surviving subset is committed: 0 reinserted, 1 gone, 2 live.
        assert!(engine.contains_edge(EdgeId(0)), "{name}");
        assert!(!engine.contains_edge(EdgeId(1)), "{name}");
        assert!(engine.contains_edge(EdgeId(2)), "{name}");
        assert!(!engine.contains_edge(EdgeId(9)), "{name}");
        engine.verify().unwrap();
    }
}

#[test]
fn staged_sessions_deduplicate_identically_for_every_engine() {
    let builder = EngineBuilder::new(8).rank(2).seed(11);
    for kind in EngineKind::ALL {
        let mut engine = engine::build(kind, &builder);
        let name = engine.name();
        let mut session = BatchSession::new(&mut *engine);
        let e0 = HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1));
        assert!(session.stage(Update::Insert(e0.clone())).unwrap(), "{name}");
        assert!(
            !session.stage(Update::Insert(e0)).unwrap(),
            "{name}: exact dup drops"
        );
        assert!(session
            .stage(Update::Insert(HyperEdge::pair(
                EdgeId(1),
                VertexId(2),
                VertexId(3)
            )))
            .unwrap());
        assert_eq!(session.len(), 2, "{name}");
        assert_eq!(session.deduplicated(), 1, "{name}");
        let report = session.commit().unwrap();
        assert_eq!(report.batch_size, 2, "{name}");
        assert_eq!(engine.matching_size(), 2, "{name}");
    }
}
