//! Edge-case integration tests of the public API: degenerate batches, degenerate
//! edges, id reuse, accessor consistency, and the vertex-cover corollary of §2.

use pdmm::hypergraph::matching::verify_maximality;
use pdmm::prelude::*;

fn pair(id: u64, a: u32, b: u32) -> HyperEdge {
    HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b))
}

#[test]
fn empty_batches_are_noops() {
    let mut matcher = ParallelDynamicMatching::new(10, Config::for_graphs(1));
    let report = matcher.apply_batch(&[]).unwrap();
    assert_eq!(report.batch_size, 0);
    assert_eq!(matcher.matching_size(), 0);
    matcher
        .apply_batch(&[Update::Insert(pair(0, 0, 1))])
        .unwrap();
    let before = matcher.matching_ids();
    matcher.apply_batch(&[]).unwrap();
    assert_eq!(matcher.matching_ids(), before);
    matcher.verify_invariants().unwrap();
}

#[test]
fn graph_with_zero_vertices_accepts_empty_batches() {
    let mut matcher = ParallelDynamicMatching::new(0, Config::for_graphs(2));
    matcher.apply_batch(&[]).unwrap();
    assert_eq!(matcher.matching_size(), 0);
    matcher.verify_invariants().unwrap();
}

#[test]
fn rank_one_edges_are_matched_like_singleton_sets() {
    // A rank-1 hyperedge {v} is matched iff v is free; two rank-1 edges on the same
    // vertex conflict.
    let mut matcher = ParallelDynamicMatching::new(3, Config::for_graphs(3));
    matcher
        .apply_batch(&[
            Update::Insert(HyperEdge::new(EdgeId(0), vec![VertexId(0)])),
            Update::Insert(HyperEdge::new(EdgeId(1), vec![VertexId(0)])),
            Update::Insert(HyperEdge::new(EdgeId(2), vec![VertexId(1)])),
        ])
        .unwrap();
    assert_eq!(matcher.matching_size(), 2);
    matcher.verify_invariants().unwrap();
    // Deleting the matched singleton on vertex 0 promotes the other one.
    let matched_on_v0 = matcher.matched_edge_of(VertexId(0)).unwrap();
    matcher
        .apply_batch(&[Update::Delete(matched_on_v0)])
        .unwrap();
    assert_eq!(matcher.matching_size(), 2);
    matcher.verify_invariants().unwrap();
}

#[test]
fn self_loop_pairs_collapse_to_rank_one() {
    let mut matcher = ParallelDynamicMatching::new(2, Config::for_graphs(4));
    matcher
        .apply_batch(&[Update::Insert(pair(0, 1, 1))])
        .unwrap();
    assert_eq!(matcher.matching_size(), 1);
    assert!(matcher.matched_edge_of(VertexId(1)).is_some());
    assert!(matcher.matched_edge_of(VertexId(0)).is_none());
    matcher.verify_invariants().unwrap();
}

#[test]
fn edge_ids_can_be_reused_after_deletion_many_times() {
    let mut matcher = ParallelDynamicMatching::new(4, Config::for_graphs(5));
    for round in 0..20u32 {
        let (a, b) = ((round % 3), (round % 3) + 1);
        matcher
            .apply_batch(&[Update::Insert(pair(7, a, b))])
            .unwrap();
        assert_eq!(matcher.matching_size(), 1);
        matcher.apply_batch(&[Update::Delete(EdgeId(7))]).unwrap();
        assert_eq!(matcher.matching_size(), 0);
    }
    matcher.verify_invariants().unwrap();
}

#[test]
fn accessors_are_mutually_consistent() {
    let mut matcher = ParallelDynamicMatching::new(6, Config::for_graphs(6));
    matcher
        .apply_batch(&[
            Update::Insert(pair(0, 0, 1)),
            Update::Insert(pair(1, 2, 3)),
            Update::Insert(pair(2, 3, 4)),
        ])
        .unwrap();
    let matching = matcher.matching_ids();
    assert_eq!(matching.len(), matcher.matching_size());
    for id in &matching {
        // Every matched edge's endpoints point back at it and sit at its level.
        let live = matcher.live_edges();
        let edge = live.iter().find(|e| e.id == *id).unwrap();
        for &v in edge.vertices() {
            assert_eq!(matcher.matched_edge_of(v), Some(*id));
            assert!(matcher.level_of(v) >= 0);
        }
    }
    // Unmatched vertices report level -1 and no matched edge.
    for v in 0..6u32 {
        let v = VertexId(v);
        if matcher.matched_edge_of(v).is_none() {
            assert_eq!(matcher.level_of(v), -1);
        }
    }
}

#[test]
fn matched_endpoints_form_a_vertex_cover() {
    // §2: the endpoint set of a maximal matching is a vertex cover (within a factor
    // r of minimum).  Check the covering property directly on a random graph.
    let edges = pdmm::hypergraph::generators::gnm_graph(80, 400, 3, 0);
    let mut truth = DynamicHypergraph::new(80);
    let mut matcher = ParallelDynamicMatching::new(80, Config::for_graphs(7));
    let batch = UpdateBatch::new(edges.into_iter().map(Update::Insert).collect()).unwrap();
    truth.apply_batch(&batch);
    matcher.apply_batch(&batch).unwrap();
    assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
    let cover: Vec<VertexId> = matcher
        .matching_ids()
        .iter()
        .flat_map(|id| truth.edge(*id).unwrap().vertices().to_vec())
        .collect();
    assert_eq!(
        pdmm::hypergraph::matching::uncovered_edges(&truth, &cover),
        0
    );
}

#[test]
fn one_giant_batch_is_the_static_case() {
    // Feeding the whole graph as a single batch reduces to the static parallel
    // algorithm (§3.1): one batch, polylog depth, maximal result.
    let edges = pdmm::hypergraph::generators::gnm_graph(500, 3_000, 9, 0);
    let mut truth = DynamicHypergraph::new(500);
    let batch = UpdateBatch::new(edges.into_iter().map(Update::Insert).collect()).unwrap();
    truth.apply_batch(&batch);
    let mut matcher = ParallelDynamicMatching::new(500, Config::for_graphs(8));
    let report = matcher.apply_batch(&batch).unwrap();
    assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
    assert!(
        report.depth < 200,
        "one batch of 3000 insertions should take polylog rounds, got {}",
        report.depth
    );
    matcher.verify_invariants().unwrap();
}

#[test]
fn deleting_everything_in_one_batch_empties_the_matching() {
    let edges = pdmm::hypergraph::generators::gnm_graph(100, 500, 13, 0);
    let ids: Vec<EdgeId> = edges.iter().map(|e| e.id).collect();
    let mut matcher = ParallelDynamicMatching::new(100, Config::for_graphs(9));
    matcher
        .apply_batch(&edges.into_iter().map(Update::Insert).collect::<Vec<_>>())
        .unwrap();
    assert!(matcher.matching_size() > 0);
    let report = matcher
        .apply_batch(&ids.into_iter().map(Update::Delete).collect::<Vec<_>>())
        .unwrap();
    assert_eq!(matcher.matching_size(), 0);
    assert_eq!(matcher.num_temp_deleted(), 0);
    assert!(report.matched_deletions > 0);
    matcher.verify_invariants().unwrap();
}

#[test]
fn cost_counters_are_monotone_and_reported_per_batch() {
    let mut matcher = ParallelDynamicMatching::new(50, Config::for_graphs(10));
    let edges = pdmm::hypergraph::generators::gnm_graph(50, 200, 17, 0);
    let mut last_work = 0u64;
    for chunk in edges.chunks(40) {
        let before = matcher.cost().snapshot();
        let report = matcher
            .apply_batch(
                &chunk
                    .iter()
                    .cloned()
                    .map(Update::Insert)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let after = matcher.cost().snapshot();
        assert_eq!(after.since(&before).work, report.work);
        assert_eq!(after.since(&before).depth, report.depth);
        assert!(after.work >= last_work);
        last_work = after.work;
    }
}
