//! Differential test pinning the two batch-validation paths together.
//!
//! The engine layer validates updates in two places: [`validate_batch`]
//! (whole-batch, used by the shared `run_batch` scaffold inside every
//! `apply_batch`) and [`BatchSession::stage`] (incremental, used by the staged
//! ingest path).  Both are built on the same `BatchLedger` machine; this test
//! drives random dirty update sequences — duplicates, reinserts, rank and
//! vertex violations, delete-then-insert and insert-then-delete chains —
//! through both paths and asserts they agree exactly:
//!
//! * every update a strict session rejects would make the staged batch fail
//!   `validate_batch` with the *same* error;
//! * every update a session deduplicates is a `Duplicate*` under
//!   `validate_batch`, naming the same edge;
//! * after every accepted update, the staged prefix passes `validate_batch`;
//! * strict and lossy sessions stage the same subset, lossy collecting exactly
//!   the errors the strict session returned;
//! * the final staged batch passes engine validation and commits cleanly.

use pdmm::engine::{self, validate_batch, BatchError, BatchSession, MatchingEngine};
use pdmm::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

const NUM_VERTICES: usize = 6;
const MAX_RANK: usize = 2;
/// Ids of the edges every engine is primed with before staging begins.
const LIVE_IDS: [u64; 3] = [0, 1, 2];

fn primed_engine(kind: EngineKind) -> Box<dyn MatchingEngine + Send> {
    let builder = EngineBuilder::new(NUM_VERTICES).rank(MAX_RANK).seed(7);
    let mut engine = engine::build(kind, &builder);
    engine
        .apply_batch(&[
            Update::Insert(HyperEdge::pair(EdgeId(0), VertexId(0), VertexId(1))),
            Update::Insert(HyperEdge::pair(EdgeId(1), VertexId(2), VertexId(3))),
            Update::Insert(HyperEdge::pair(EdgeId(2), VertexId(4), VertexId(5))),
        ])
        .unwrap();
    engine
}

/// Decodes one generated tuple into an update.  Small id and vertex spaces
/// make duplicates, reinserts, unknown deletions, out-of-range endpoints
/// (vertices 6..8) and rank violations (op 3) all likely.
fn decode(op: u8, id: u64, a: u32, b: u32, c: u32) -> Update {
    match op {
        0 | 1 => Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b))),
        2 => Update::Delete(EdgeId(id)),
        _ => Update::Insert(HyperEdge::new(
            EdgeId(id),
            vec![VertexId(a), VertexId(b), VertexId(c)],
        )),
    }
}

fn is_live(id: EdgeId) -> bool {
    LIVE_IDS.contains(&id.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn session_and_validate_batch_agree_on_random_dirty_streams(
        raw in proptest::collection::vec(
            (0u8..4, 0u64..8, 0u32..8, 0u32..8, 0u32..8),
            1..40,
        ),
    ) {
        let updates: Vec<Update> = raw
            .into_iter()
            .map(|(op, id, a, b, c)| decode(op, id, a, b, c))
            .collect();

        // Strict session against the static-recompute engine (deterministic).
        let mut strict_engine = primed_engine(EngineKind::StaticRecompute);
        let mut strict = BatchSession::new(&mut *strict_engine);
        let mut accepted: Vec<Update> = Vec::new();
        let mut strict_errors: Vec<BatchError> = Vec::new();
        for update in &updates {
            match strict.stage(update.clone()) {
                Ok(true) => {
                    accepted.push(update.clone());
                    // Invariant: every session-accepted prefix passes the
                    // engine-side whole-batch validation.
                    prop_assert_eq!(
                        validate_batch(&accepted, is_live, MAX_RANK, NUM_VERTICES),
                        Ok(())
                    );
                }
                Ok(false) => {
                    // Deduplicated: as a raw batch element it would be a
                    // Duplicate* error naming the same edge.
                    let mut with = accepted.clone();
                    with.push(update.clone());
                    let err = validate_batch(&with, is_live, MAX_RANK, NUM_VERTICES)
                        .expect_err("a deduplicated update must be a strict duplicate");
                    let id = update.edge_id();
                    prop_assert!(
                        err == BatchError::DuplicateEdgeId { id }
                            || err == BatchError::DuplicateDeletion { id },
                        "dedup of {:?} maps to non-duplicate error {:?}",
                        update,
                        err
                    );
                }
                Err(error) => {
                    // Rejected: appending it to the accepted prefix must fail
                    // whole-batch validation with the identical error.
                    let mut with = accepted.clone();
                    with.push(update.clone());
                    prop_assert_eq!(
                        validate_batch(&with, is_live, MAX_RANK, NUM_VERTICES),
                        Err(error.clone())
                    );
                    strict_errors.push(error);
                }
            }
        }

        // The lossy session stages exactly the same subset and collects
        // exactly the errors the strict session returned.
        let mut lossy_engine = primed_engine(EngineKind::StaticRecompute);
        let mut lossy = BatchSession::lossy(&mut *lossy_engine);
        for update in &updates {
            let staged = lossy.stage(update.clone());
            prop_assert!(staged.is_ok(), "lossy staging returned {:?}", staged);
        }
        prop_assert_eq!(lossy.staged(), accepted.as_slice());
        let lossy_errors: Vec<BatchError> =
            lossy.rejected().iter().map(|r| r.error.clone()).collect();
        prop_assert_eq!(lossy_errors, strict_errors);

        // Both commits succeed, and being the same deterministic engine fed
        // the same surviving batch, they agree on the resulting matching.
        let strict_report = strict.commit().expect("strict staged batch must commit");
        let lossy_report = lossy.commit_lossy().expect("lossy staged batch must commit");
        prop_assert_eq!(strict_report.batch_size, accepted.len());
        prop_assert_eq!(strict_report, lossy_report.batch);
        let mut a = strict_engine.matching_ids();
        let mut b = lossy_engine.matching_ids();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);

        // Cross-check the live view: ids inserted (and not re-deleted) by the
        // committed batch are live, batch-deleted ids are not.
        let mut live: HashSet<EdgeId> = LIVE_IDS.iter().map(|&id| EdgeId(id)).collect();
        for update in &accepted {
            match update {
                Update::Insert(edge) => {
                    live.insert(edge.id);
                }
                Update::Delete(id) => {
                    live.remove(id);
                }
            }
        }
        for id in (0..8).map(EdgeId) {
            prop_assert_eq!(strict_engine.contains_edge(id), live.contains(&id));
        }
    }
}
