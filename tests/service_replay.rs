//! Serve-path integration suite: `pdmm::service::EngineService` across every
//! engine, at 1/2/8 threads (mirroring `engine_conformance`):
//!
//! * **journal → replay is bit-identical**: drain a churn workload through a
//!   service, replay its journal on a fresh engine of the same kind and seed,
//!   and the matching, committed count and metrics all match exactly;
//! * **incremental commit conforms**: a long-lived `BatchSession` draining
//!   chunks through `commit_staged()` equals the same chunks through plain
//!   `apply_batch`, and a single `commit_staged()` equals one big `commit()`;
//! * **concurrent snapshot consistency**: readers on the in-tree work-stealing
//!   pool sample snapshots while batches commit; every observed snapshot must
//!   be exactly the (valid, maximal) matching of some committed prefix, and
//!   each reader's view must advance monotonically.

use pdmm::engine::{self, BatchSession};
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::hypergraph::verify_maximality;
use pdmm::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn serve_workload() -> Workload {
    streams::random_churn(120, 2, 200, 14, 40, 0.5, 23)
}

fn builder_for(workload: &Workload, seed: u64, threads: usize) -> EngineBuilder {
    EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(seed)
        .threads(threads)
}

#[test]
fn journal_then_replay_is_bit_identical_on_every_engine() {
    let workload = serve_workload();
    for threads in THREAD_COUNTS {
        for kind in EngineKind::ALL {
            let builder = builder_for(&workload, 7, threads);
            let service = EngineService::new(engine::build(kind, &builder));
            for batch in &workload.batches {
                service.submit(batch.clone());
                service.drain().unwrap_or_else(|e| {
                    panic!("{kind} at {threads} threads refused a generated batch: {e}")
                });
            }
            let live = service.snapshot();

            let journal = service.journal();
            let replayed = EngineService::replay(engine::build(kind, &builder), &journal)
                .unwrap_or_else(|e| panic!("{kind} could not replay its own journal: {e}"));
            let rebuilt = replayed.snapshot();
            assert_eq!(
                rebuilt.edge_ids(),
                live.edge_ids(),
                "{kind} at {threads} threads: replay must rebuild the exact matching"
            );
            assert_eq!(rebuilt.committed_batches(), live.committed_batches());
            assert_eq!(rebuilt.metrics(), live.metrics(), "{kind}");
            // Replay of a replayed journal is a fixed point.
            assert_eq!(replayed.journal(), journal, "{kind}");
        }
    }
}

#[test]
fn replay_on_a_different_engine_rebuilds_the_same_graph() {
    // The journal is engine-agnostic: replaying it on *any* engine yields a
    // valid maximal matching of the same final graph (matchings may differ).
    let workload = serve_workload();
    let builder = builder_for(&workload, 3, 1);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    for batch in &workload.batches {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    let journal = service.journal();

    let mut truth = DynamicHypergraph::new(workload.num_vertices);
    for batch in &workload.batches {
        truth.apply_batch(batch);
    }
    for kind in EngineKind::ALL {
        let replayed = EngineService::replay(engine::build(kind, &builder), &journal)
            .unwrap_or_else(|e| panic!("{kind} rejected the shared journal: {e}"));
        let ids = replayed.snapshot().edge_ids();
        assert_eq!(
            verify_maximality(&truth, &ids),
            Ok(()),
            "{kind} replayed to a non-maximal matching"
        );
    }
}

#[test]
fn commit_staged_chunks_equal_plain_apply_batch_on_every_engine() {
    let workload = serve_workload();
    for threads in THREAD_COUNTS {
        for kind in EngineKind::ALL {
            let builder = builder_for(&workload, 11, threads);

            let mut via_session = engine::build(kind, &builder);
            let mut via_apply = engine::build(kind, &builder);
            let mut session = BatchSession::new(&mut *via_session);
            for (i, batch) in workload.batches.iter().enumerate() {
                session
                    .stage_all(batch.iter().cloned())
                    .unwrap_or_else(|e| panic!("{kind} refused staging batch {i}: {e}"));
                let incremental = session
                    .commit_staged()
                    .unwrap_or_else(|e| panic!("{kind} refused commit_staged of batch {i}: {e}"));
                let plain = via_apply.apply_batch(batch).unwrap();
                assert_eq!(
                    incremental, plain,
                    "{kind} at {threads} threads diverged on the report of batch {i}"
                );
            }
            session.abort();
            let mut a = via_session.matching_ids();
            let mut b = via_apply.matching_ids();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(
                a, b,
                "{kind} at {threads} threads: incremental commit changed the matching"
            );
            assert_eq!(via_session.metrics(), via_apply.metrics(), "{kind}");
        }
    }
}

#[test]
fn one_commit_staged_equals_one_big_commit_on_every_engine() {
    // The degenerate boundary: everything staged, committed once.
    let edges = pdmm::hypergraph::generators::gnm_graph(80, 300, 5, 0);
    let updates: Vec<Update> = edges.into_iter().map(Update::Insert).collect();
    for kind in EngineKind::ALL {
        let builder = EngineBuilder::new(80).seed(5);
        let mut one_big = engine::build(kind, &builder);
        let mut incremental = engine::build(kind, &builder);

        let mut session = BatchSession::new(&mut *one_big);
        session.stage_all(updates.iter().cloned()).unwrap();
        let commit_report = session.commit().unwrap();

        let mut session = BatchSession::new(&mut *incremental);
        session.stage_all(updates.iter().cloned()).unwrap();
        let staged_report = session.commit_staged().unwrap();
        session.abort();

        assert_eq!(commit_report, staged_report, "{kind}");
        assert_eq!(one_big.matching_ids(), incremental.matching_ids(), "{kind}");
    }
}

/// The matching and graph after each committed prefix of the workload,
/// precomputed on a twin engine (every engine is deterministic given seed and
/// batch sequence, pinned by `engine_conformance` across thread counts).
struct PrefixStates {
    matchings: Vec<Vec<EdgeId>>,
    graphs: Vec<DynamicHypergraph>,
}

fn prefix_states(workload: &Workload, kind: EngineKind, builder: &EngineBuilder) -> PrefixStates {
    let mut engine = engine::build(kind, builder);
    let mut graph = DynamicHypergraph::new(workload.num_vertices);
    let mut matchings = vec![engine.matching_ids()];
    let mut graphs = vec![graph.clone()];
    for batch in &workload.batches {
        engine.apply_batch(batch).unwrap();
        graph.apply_batch(batch);
        let mut ids = engine.matching_ids();
        ids.sort_unstable();
        matchings.push(ids);
        graphs.push(graph.clone());
    }
    PrefixStates { matchings, graphs }
}

#[test]
fn concurrent_snapshot_reads_observe_only_committed_prefixes() {
    let workload = serve_workload();
    for threads in THREAD_COUNTS {
        for kind in [EngineKind::Parallel, EngineKind::NaiveSequential] {
            let builder = builder_for(&workload, 17, threads);
            let expected = prefix_states(&workload, kind, &builder);
            let service = EngineService::new(engine::build(kind, &builder));

            // Readers run on the in-tree work-stealing pool while this thread
            // submits and drains.  Each reader keeps its own observation log
            // so per-reader monotonicity can be checked afterwards.
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let done = AtomicBool::new(false);
            let logs: Mutex<Vec<Vec<Arc<MatchingSnapshot>>>> = Mutex::new(Vec::new());
            pool.scope(|s| {
                for _ in 0..2 {
                    s.spawn(|_| {
                        let mut log = Vec::new();
                        while !done.load(Ordering::Acquire) && log.len() < 50_000 {
                            log.push(service.snapshot());
                            std::thread::yield_now();
                        }
                        // If the observation cap hit first, wait out the
                        // remaining commits so the closing snapshot below is
                        // guaranteed to see the final one.
                        while !done.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                        log.push(service.snapshot());
                        logs.lock().unwrap().push(log);
                    });
                }
                for batch in &workload.batches {
                    service.submit(batch.clone());
                    service.drain().unwrap();
                }
                done.store(true, Ordering::Release);
            });

            let logs = logs.into_inner().unwrap();
            assert_eq!(logs.len(), 2, "both readers must report");
            let batches = workload.batches.len() as u64;
            for log in &logs {
                assert!(!log.is_empty());
                let mut last_seen = 0u64;
                for snapshot in log {
                    let k = snapshot.committed_batches();
                    assert!(
                        k <= batches,
                        "{kind} at {threads} threads: snapshot from the future ({k})"
                    );
                    assert!(
                        k >= last_seen,
                        "{kind} at {threads} threads: committed count went backwards"
                    );
                    last_seen = k;
                    let prefix = k as usize;
                    assert_eq!(
                        snapshot.edge_ids(),
                        expected.matchings[prefix],
                        "{kind} at {threads} threads: snapshot at prefix {prefix} is not \
                         the committed matching"
                    );
                    assert_eq!(
                        verify_maximality(&expected.graphs[prefix], &snapshot.edge_ids()),
                        Ok(()),
                        "{kind} at {threads} threads: snapshot at prefix {prefix} is not maximal"
                    );
                }
                // The final observation (taken after `done`) saw the last commit.
                assert_eq!(log.last().unwrap().committed_batches(), batches);
            }
        }
    }
}

#[test]
fn snapshot_vertex_lookup_agrees_with_the_edge_set() {
    let workload = serve_workload();
    let builder = builder_for(&workload, 29, 1);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    let mut truth = DynamicHypergraph::new(workload.num_vertices);
    for batch in &workload.batches {
        truth.apply_batch(batch);
        service.submit(batch.clone());
        service.drain().unwrap();
        let snapshot = service.snapshot();
        for id in snapshot.edges() {
            let edge = truth.edge(id).expect("matched edges are live");
            for &v in edge.vertices() {
                assert_eq!(snapshot.matched_edge_of(v), Some(id));
                assert!(snapshot.is_matched(v));
            }
        }
        for v in 0..workload.num_vertices as u32 {
            if let Some(id) = snapshot.matched_edge_of(VertexId(v)) {
                assert!(snapshot.contains_edge(id));
                assert!(truth.edge(id).unwrap().contains(VertexId(v)));
            }
        }
    }
}
