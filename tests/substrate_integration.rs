//! Cross-crate substrate tests: the PRAM-style primitives, the static matcher and
//! the hypergraph layer working together the way the core algorithm uses them.

use pdmm::hypergraph::generators;
use pdmm::hypergraph::io;
use pdmm::hypergraph::matching::verify_maximality;
use pdmm::prelude::*;
use pdmm::primitives::cost_model::CostTracker;
use pdmm::primitives::dictionary::ParallelDictionary;
use pdmm::primitives::prefix_sum;
use pdmm::primitives::random::RandomSource;
use pdmm::static_matching::luby::luby_maximal_matching;

#[test]
fn dictionary_tracks_incidence_like_the_algorithm_does() {
    // Mimics how the core algorithm uses the parallel dictionary interface of
    // §3.2.3: batch-insert all incidences of a graph, batch-erase the incidences of
    // deleted edges, and retrieve what remains.
    let edges = generators::gnm_graph(100, 400, 1, 0);
    let cost = CostTracker::new();
    let mut dict: ParallelDictionary<(u32, u64), ()> = ParallelDictionary::new();
    let incidences: Vec<((u32, u64), ())> = edges
        .iter()
        .flat_map(|e| {
            e.vertices()
                .iter()
                .map(|v| ((v.0, e.id.0), ()))
                .collect::<Vec<_>>()
        })
        .collect();
    let total = incidences.len();
    dict.insert_batch(incidences, Some(&cost));
    assert_eq!(dict.len(), total);

    let deleted: Vec<(u32, u64)> = edges
        .iter()
        .take(100)
        .flat_map(|e| {
            e.vertices()
                .iter()
                .map(|v| (v.0, e.id.0))
                .collect::<Vec<_>>()
        })
        .collect();
    dict.erase_batch(&deleted, Some(&cost));
    assert_eq!(dict.len(), total - deleted.len());
    assert!(cost.total_work() > 0);
    assert_eq!(cost.total_depth(), 2);
}

#[test]
fn prefix_sums_compute_o_tilde_style_cumulative_counts() {
    // The õ_{v,ℓ} quantities are cumulative sums of per-level counts (Claim 3.3);
    // check the prefix-sum substrate against a direct computation on real data.
    let edges = generators::random_hypergraph(60, 300, 3, 5, 0);
    let graph = DynamicHypergraph::from_edges(60, edges);
    let degrees: Vec<u64> = (0..60u32)
        .map(|v| graph.degree(VertexId(v)) as u64)
        .collect();
    let (prefix, total) = prefix_sum::exclusive_scan(&degrees);
    assert_eq!(total, graph.total_incidence() as u64);
    for v in 0..60usize {
        let direct: u64 = degrees[..v].iter().sum();
        assert_eq!(prefix[v], direct);
    }
}

#[test]
fn static_matcher_feeds_the_dynamic_one() {
    // The dynamic algorithm's insertion path runs the static matcher on the free
    // edges; check the two agree on maximality when driven by the same stream.
    let edges = generators::gnm_graph(200, 900, 3, 0);
    let truth = DynamicHypergraph::from_edges(200, edges.clone());

    let mut rng = RandomSource::from_seed(11);
    let static_result = luby_maximal_matching(&edges, &mut rng, None);
    assert_eq!(verify_maximality(&truth, &static_result.edges), Ok(()));

    let mut dynamic = ParallelDynamicMatching::new(200, Config::for_graphs(11));
    dynamic
        .apply_batch(&edges.into_iter().map(Update::Insert).collect::<Vec<_>>())
        .unwrap();
    assert_eq!(verify_maximality(&truth, &dynamic.matching_ids()), Ok(()));

    // Both are maximal matchings of the same graph, hence 2-approximations of each
    // other.
    let (s, d) = (static_result.edges.len(), dynamic.matching_size());
    assert!(s * 2 >= d && d * 2 >= s);
}

#[test]
fn serialized_workload_replays_identically() {
    let w = pdmm::hypergraph::streams::random_churn(80, 2, 150, 10, 30, 0.5, 13);
    let text = io::batches_to_string(&w.batches);
    let parsed = io::batches_from_string(&text).expect("parse");
    assert_eq!(parsed, w.batches);

    let mut a = ParallelDynamicMatching::new(80, Config::for_graphs(4));
    let mut b = ParallelDynamicMatching::new(80, Config::for_graphs(4));
    for batch in &w.batches {
        a.apply_batch(batch).unwrap();
    }
    for batch in &parsed {
        b.apply_batch(batch).unwrap();
    }
    let mut ma = a.matching_ids();
    let mut mb = b.matching_ids();
    ma.sort_unstable();
    mb.sort_unstable();
    assert_eq!(ma, mb);
}

#[test]
fn edge_list_files_round_trip_through_the_graph() {
    let edges = generators::random_hypergraph(40, 120, 4, 9, 0);
    let text = io::edges_to_string(&edges);
    let parsed = io::edges_from_string(&text).expect("parse");
    let graph = DynamicHypergraph::from_edges(40, parsed);
    assert_eq!(graph.num_edges(), 120);
    assert_eq!(graph.max_rank_seen(), 4);
}
