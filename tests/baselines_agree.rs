//! Cross-algorithm integration tests: every dynamic matcher in the workspace (the
//! paper's parallel algorithm and all baselines) processes the same oblivious
//! update streams, and each must maintain a valid maximal matching of the same
//! evolving graph.  Matchings are allowed to differ (maximal matchings are not
//! unique); maximality, validity and the `1/r` approximation guarantee must not.

use pdmm::hypergraph::matching::{greedy_maximal_matching, verify_maximality};
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::hypergraph::{generators, matching};
use pdmm::prelude::*;
use pdmm::seq_dynamic::{NaiveDynamicMatching, RandomReplaceMatching, RecomputeFromScratch};

fn algorithms(num_vertices: usize) -> Vec<Box<dyn DynamicMatcher>> {
    vec![
        Box::new(ParallelDynamicMatching::new(num_vertices, Config::for_graphs(1))),
        Box::new(NaiveDynamicMatching::new(num_vertices)),
        Box::new(RandomReplaceMatching::new(num_vertices, 2)),
        Box::new(RecomputeFromScratch::new(num_vertices, 3)),
    ]
}

fn run_all_and_verify(workload: &Workload) {
    assert!(streams::validate_workload(workload));
    let mut algs = algorithms(workload.num_vertices);
    let mut truth = DynamicHypergraph::new(workload.num_vertices);
    for (i, batch) in workload.batches.iter().enumerate() {
        truth.apply_batch(batch);
        for alg in &mut algs {
            alg.apply_batch(batch);
            let ids = alg.matching_edge_ids();
            assert_eq!(
                verify_maximality(&truth, &ids),
                Ok(()),
                "{} broke maximality after batch {i} of {}",
                alg.name(),
                workload.name
            );
        }
    }
    // All maximal matchings of the same graph are within a factor 2 (rank 2) of one
    // another, because each is at least half the maximum matching.
    let sizes: Vec<usize> = algs.iter().map(|a| a.matching_edge_ids().len()).collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        min * 2 >= max,
        "maximal matchings must be 2-approximations of each other: {sizes:?}"
    );
}

#[test]
fn all_algorithms_agree_on_random_churn() {
    let w = streams::random_churn(120, 2, 300, 15, 50, 0.5, 41);
    run_all_and_verify(&w);
}

#[test]
fn all_algorithms_agree_on_sliding_window() {
    let edges = generators::gnm_graph(150, 700, 6, 0);
    let w = streams::sliding_window(150, edges, 70, 4);
    run_all_and_verify(&w);
}

#[test]
fn all_algorithms_agree_on_hub_churn() {
    let w = streams::hub_churn(200, 4, 15, 60, 8);
    run_all_and_verify(&w);
}

#[test]
fn parallel_algorithm_handles_rank_three_hypergraphs_like_the_naive_one() {
    let w = streams::random_churn(90, 3, 200, 12, 40, 0.5, 17);
    assert!(streams::validate_workload(&w));
    let mut parallel = ParallelDynamicMatching::new(w.num_vertices, Config::for_hypergraphs(3, 5));
    let mut naive = NaiveDynamicMatching::new(w.num_vertices);
    let mut truth = DynamicHypergraph::new(w.num_vertices);
    for batch in &w.batches {
        truth.apply_batch(batch);
        ParallelDynamicMatching::apply_batch(&mut parallel, batch);
        DynamicMatcher::apply_batch(&mut naive, batch);
        assert_eq!(verify_maximality(&truth, &parallel.matching()), Ok(()));
        assert_eq!(verify_maximality(&truth, &naive.matching_edge_ids()), Ok(()));
        // Rank 3: both matchings are 1/3-approximations, so sizes differ by ≤ 3×.
        let p = parallel.matching_size().max(1);
        let n = naive.matching_edge_ids().len().max(1);
        assert!(p * 3 >= n && n * 3 >= p, "sizes {p} and {n} are not within 3x");
    }
    parallel.verify_invariants().unwrap();
}

#[test]
fn matching_quality_is_close_to_greedy_reference() {
    // After a long churn, compare against a freshly computed greedy maximal
    // matching of the final graph (the static reference).
    let w = streams::random_churn(200, 2, 600, 20, 60, 0.55, 29);
    let mut matcher = ParallelDynamicMatching::new(w.num_vertices, Config::for_graphs(30));
    let mut truth = DynamicHypergraph::new(w.num_vertices);
    for batch in &w.batches {
        truth.apply_batch(batch);
        matcher.apply_batch(batch);
    }
    let dynamic_size = matcher.matching_size();
    let greedy_size = greedy_maximal_matching(&truth).len();
    assert!(dynamic_size * 2 >= greedy_size);
    assert!(greedy_size * 2 >= dynamic_size);
    // The vertex cover induced by the dynamic matching covers the whole graph.
    let matched_ids = matcher.matching_edge_ids();
    let m = matching::Matching::from_edge_ids(&truth, &matched_ids);
    assert_eq!(matching::uncovered_edges(&truth, &m.vertex_cover()), 0);
}
