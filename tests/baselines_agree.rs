//! Cross-algorithm integration tests: every dynamic matcher in the workspace (the
//! paper's parallel algorithm, all baselines, and the static-recompute adapter)
//! processes the same oblivious update streams through the shared `MatchingEngine`
//! trait, and each must maintain a valid maximal matching of the same evolving
//! graph.  Matchings are allowed to differ (maximal matchings are not unique);
//! maximality, validity and the `1/r` approximation guarantee must not.

use pdmm::engine;
use pdmm::hypergraph::matching::{greedy_maximal_matching, verify_maximality};
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::hypergraph::{generators, matching};
use pdmm::prelude::*;
use pdmm::seq_dynamic::NaiveDynamicMatching;

fn algorithms(num_vertices: usize) -> Vec<Box<dyn MatchingEngine + Send>> {
    engine::build_all(&EngineBuilder::new(num_vertices).seed(1))
}

fn run_all_and_verify(workload: &Workload) {
    assert!(streams::validate_workload(workload));
    let mut algs = algorithms(workload.num_vertices);
    let mut truth = DynamicHypergraph::new(workload.num_vertices);
    for (i, batch) in workload.batches.iter().enumerate() {
        truth.apply_batch(batch);
        for alg in &mut algs {
            alg.apply_batch(batch).unwrap();
            let ids = alg.matching_ids();
            assert_eq!(
                verify_maximality(&truth, &ids),
                Ok(()),
                "{} broke maximality after batch {i} of {}",
                alg.name(),
                workload.name
            );
        }
    }
    // All maximal matchings of the same graph are within a factor 2 (rank 2) of one
    // another, because each is at least half the maximum matching.
    let sizes: Vec<usize> = algs.iter().map(|a| a.matching_ids().len()).collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(
        min * 2 >= max,
        "maximal matchings must be 2-approximations of each other: {sizes:?}"
    );
}

#[test]
fn all_algorithms_agree_on_random_churn() {
    let w = streams::random_churn(120, 2, 300, 15, 50, 0.5, 41);
    run_all_and_verify(&w);
}

#[test]
fn all_algorithms_agree_on_sliding_window() {
    let edges = generators::gnm_graph(150, 700, 6, 0);
    let w = streams::sliding_window(150, edges, 70, 4);
    run_all_and_verify(&w);
}

#[test]
fn all_algorithms_agree_on_hub_churn() {
    let w = streams::hub_churn(200, 4, 15, 60, 8);
    run_all_and_verify(&w);
}

#[test]
fn parallel_algorithm_handles_rank_three_hypergraphs_like_the_naive_one() {
    let w = streams::random_churn(90, 3, 200, 12, 40, 0.5, 17);
    assert!(streams::validate_workload(&w));
    let builder = EngineBuilder::new(w.num_vertices).rank(3).seed(5);
    let mut parallel = ParallelDynamicMatching::from_builder(&builder);
    let mut naive = NaiveDynamicMatching::from_builder(&builder);
    let mut truth = DynamicHypergraph::new(w.num_vertices);
    for batch in &w.batches {
        truth.apply_batch(batch);
        parallel.apply_batch(batch).unwrap();
        naive.apply_batch(batch).unwrap();
        assert_eq!(verify_maximality(&truth, &parallel.matching_ids()), Ok(()));
        assert_eq!(verify_maximality(&truth, &naive.matching_ids()), Ok(()));
        // Rank 3: both matchings are 1/3-approximations, so sizes differ by ≤ 3×.
        let p = parallel.matching_size().max(1);
        let n = naive.matching_ids().len().max(1);
        assert!(
            p * 3 >= n && n * 3 >= p,
            "sizes {p} and {n} are not within 3x"
        );
    }
    parallel.verify_invariants().unwrap();
}

#[test]
fn matching_quality_is_close_to_greedy_reference() {
    // After a long churn, compare against a freshly computed greedy maximal
    // matching of the final graph (the static reference).
    let w = streams::random_churn(200, 2, 600, 20, 60, 0.55, 29);
    let mut matcher = ParallelDynamicMatching::new(w.num_vertices, Config::for_graphs(30));
    let mut truth = DynamicHypergraph::new(w.num_vertices);
    for batch in &w.batches {
        truth.apply_batch(batch);
        matcher.apply_batch(batch).unwrap();
    }
    let dynamic_size = matcher.matching_size();
    let greedy_size = greedy_maximal_matching(&truth).len();
    assert!(dynamic_size * 2 >= greedy_size);
    assert!(greedy_size * 2 >= dynamic_size);
    // The vertex cover induced by the dynamic matching covers the whole graph.
    let matched_ids = matcher.matching_ids();
    let m = matching::Matching::from_edge_ids(&truth, &matched_ids);
    assert_eq!(matching::uncovered_edges(&truth, &m.vertex_cover()), 0);
}
