//! Sharded-serving-layer conformance suite: `pdmm::sharding::ShardedService`
//! across every engine.
//!
//! * **1-shard conformance**: a 1-shard `ShardedService` is bit-identical to a
//!   bare `EngineService` — same per-batch reports, same snapshot (matching,
//!   metrics, committed count), same journal;
//! * **N-shard validity**: at 2/4/8 shards every shard's matching is a valid,
//!   maximal matching of exactly that shard's routed edges, and the merged
//!   snapshot's cross-shard edge set and conflicted-vertex accounting are
//!   consistent with the partitioner;
//! * **determinism and replay**: the same stream routed at any shard count
//!   yields identical per-shard journals across runs, and
//!   `ShardedService::replay` of the shard-tagged journal rebuilds
//!   bit-identical per-shard state (and is a fixed point of `journal()`);
//! * **routing semantics**: cross-shard updates land on the owner shard
//!   (minimum endpoint), deletions follow the edge, unroutable deletions
//!   surface the same typed error a single service reports.

use pdmm::engine;
use pdmm::hypergraph::graph::DynamicHypergraph;
use pdmm::hypergraph::io;
use pdmm::hypergraph::sharding::RangePartitioner;
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::hypergraph::verify_maximality;
use pdmm::prelude::*;
use pdmm::sharding::ShardedReplayError;
use std::collections::HashMap;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn shard_workload() -> Workload {
    streams::skewed_churn(96, 2, 140, 10, 36, 0.55, 2.0, 31)
}

fn builder_for(workload: &Workload, seed: u64) -> EngineBuilder {
    EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(seed)
}

fn build_shards(
    kind: EngineKind,
    builder: &EngineBuilder,
    shards: usize,
) -> Vec<Box<dyn MatchingEngine + Send>> {
    (0..shards).map(|_| engine::build(kind, builder)).collect()
}

/// Drives every batch of `workload` through `service`, draining after each
/// submission, and returns the per-shard reports in commit order.
fn drive(service: &ShardedService, workload: &Workload) -> Vec<Vec<BatchReport>> {
    let mut per_shard = vec![Vec::new(); service.num_shards()];
    for batch in &workload.batches {
        service.submit(batch.clone());
        let report = service
            .drain()
            .unwrap_or_else(|e| panic!("generated workload refused: {e}"));
        for (shard, reports) in report.per_shard.into_iter().enumerate() {
            per_shard[shard].extend(reports);
        }
    }
    per_shard
}

#[test]
fn one_shard_is_bit_identical_to_a_bare_engine_service() {
    let workload = shard_workload();
    for kind in EngineKind::ALL {
        let builder = builder_for(&workload, 7);

        let bare = EngineService::new(engine::build(kind, &builder));
        let mut bare_reports = Vec::new();
        for batch in &workload.batches {
            bare.submit(batch.clone());
            bare_reports.extend(bare.drain().unwrap());
        }

        let sharded = ShardedService::new(build_shards(kind, &builder, 1));
        let sharded_reports = drive(&sharded, &workload);

        // Reports, batch by batch.
        assert_eq!(
            sharded_reports[0], bare_reports,
            "{kind}: per-batch reports"
        );
        // Snapshots: matching, metrics, committed count.
        let a = bare.snapshot();
        let b = sharded.shard_snapshot(0);
        assert_eq!(b.edge_ids(), a.edge_ids(), "{kind}: matching");
        assert_eq!(b.metrics(), a.metrics(), "{kind}: metrics");
        assert_eq!(b.committed_batches(), a.committed_batches(), "{kind}");
        let merged = sharded.snapshot();
        assert_eq!(merged.edge_ids(), a.edge_ids(), "{kind}: merged view");
        assert_eq!(merged.metrics(), a.metrics(), "{kind}");
        assert!(merged.cross_shard_matched().is_empty(), "{kind}");
        assert!(merged.conflicted_vertices().is_empty(), "{kind}");
        // Journals: the per-shard journal is the bare journal, bit for bit.
        assert_eq!(sharded.shard_journal(0), bare.journal(), "{kind}: journal");
    }
}

#[test]
fn n_shard_matchings_are_valid_and_maximal_per_shard() {
    let workload = shard_workload();
    for kind in EngineKind::ALL {
        for &shards in &SHARD_COUNTS[1..] {
            let builder = builder_for(&workload, 11);
            let service = ShardedService::new(build_shards(kind, &builder, shards));
            drive(&service, &workload);
            let snapshot = service.snapshot();

            // Rebuild each shard's ground-truth graph from its journal and
            // verify its matching is valid and maximal on exactly its edges.
            let mut total = 0usize;
            let mut live_edges: HashMap<EdgeId, HyperEdge> = HashMap::new();
            let mut matched_shards_of: HashMap<VertexId, usize> = HashMap::new();
            for k in 0..shards {
                let mut graph = DynamicHypergraph::new(workload.num_vertices);
                for batch in io::batches_from_string(&service.shard_journal(k)).unwrap() {
                    graph.apply_batch(&batch);
                }
                let shard_snapshot = snapshot.shard(k);
                let matching = shard_snapshot.edge_ids();
                verify_maximality(&graph, &matching).unwrap_or_else(|e| {
                    panic!("{kind} shard {k}/{shards}: invalid shard matching: {e:?}")
                });
                total += matching.len();
                for edge in graph.edges() {
                    live_edges.insert(edge.id, edge.clone());
                }
                let mut vertices: Vec<VertexId> = shard_snapshot.matched_vertices().collect();
                vertices.sort_unstable();
                for v in vertices {
                    *matched_shards_of.entry(v).or_insert(0) += 1;
                }
            }
            assert_eq!(snapshot.size(), total, "{kind} at {shards} shards");

            // Every routed edge lives in exactly one shard (ids never collide
            // across shard graphs — checked implicitly by the insert above
            // succeeding per shard — and the owner is the min endpoint).
            for (id, edge) in &live_edges {
                let owner = service
                    .owner_of_edge(*id)
                    .unwrap_or_else(|| panic!("{kind}: live edge {id} has no owner"));
                assert_eq!(
                    owner,
                    service.shard_of_vertex(edge.vertices()[0]),
                    "{kind}: owner is the shard of the min endpoint"
                );
            }

            // Cross-shard accounting: reported cross edges really span
            // shards, and conflicted vertices are exactly those matched by
            // more than one shard.
            for id in snapshot.cross_shard_matched() {
                let edge = &live_edges[id];
                let owner = service.shard_of_vertex(edge.vertices()[0]);
                assert!(
                    edge.vertices()
                        .iter()
                        .any(|&v| service.shard_of_vertex(v) != owner),
                    "{kind}: edge {id} reported cross-shard but does not span shards"
                );
                assert!(snapshot.contains_edge(*id));
            }
            let expected_conflicts: Vec<VertexId> = {
                let mut v: Vec<VertexId> = matched_shards_of
                    .iter()
                    .filter(|(_, &count)| count > 1)
                    .map(|(&v, _)| v)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(
                snapshot.conflicted_vertices(),
                expected_conflicts.as_slice(),
                "{kind} at {shards} shards"
            );
            // A conflicted vertex can only arise through a cross-shard edge.
            if snapshot.cross_shard_matched().is_empty() {
                assert!(snapshot.conflicted_vertices().is_empty(), "{kind}");
            }
        }
    }
}

#[test]
fn same_stream_routes_identically_across_runs_and_replays_bit_identically() {
    let workload = shard_workload();
    for &shards in &SHARD_COUNTS {
        let builder = builder_for(&workload, 5);
        let first = ShardedService::new(build_shards(EngineKind::Parallel, &builder, shards));
        drive(&first, &workload);
        let second = ShardedService::new(build_shards(EngineKind::Parallel, &builder, shards));
        drive(&second, &workload);

        // Identical per-shard journals across runs — routing is deterministic.
        for k in 0..shards {
            assert_eq!(
                first.shard_journal(k),
                second.shard_journal(k),
                "shard {k}/{shards}: journals diverged across identical runs"
            );
        }
        let journal = first.journal();
        assert_eq!(journal, second.journal(), "{shards} shards");

        // Replay of the shard-tagged journal rebuilds bit-identical state.
        let replayed = ShardedService::replay(
            build_shards(EngineKind::Parallel, &builder, shards),
            &journal,
        )
        .unwrap_or_else(|e| panic!("{shards} shards: replay failed: {e}"));
        for k in 0..shards {
            let live = first.shard_snapshot(k);
            let rebuilt = replayed.shard_snapshot(k);
            assert_eq!(rebuilt.edge_ids(), live.edge_ids(), "shard {k}/{shards}");
            assert_eq!(rebuilt.metrics(), live.metrics(), "shard {k}/{shards}");
            assert_eq!(
                rebuilt.committed_batches(),
                live.committed_batches(),
                "shard {k}/{shards}"
            );
        }
        let live = first.snapshot();
        let rebuilt = replayed.snapshot();
        assert_eq!(rebuilt.edge_ids(), live.edge_ids());
        assert_eq!(rebuilt.cross_shard_matched(), live.cross_shard_matched());
        assert_eq!(rebuilt.conflicted_vertices(), live.conflicted_vertices());
        // Replaying a journal reproduces the journal itself.
        assert_eq!(replayed.journal(), journal, "{shards} shards");
    }
}

#[test]
fn routing_classifies_local_and_cross_shard_updates() {
    // RangePartitioner over 8 vertices and 2 shards: vertices 0..4 → shard 0,
    // 4..8 → shard 1, so placement is easy to reason about.
    let builder = EngineBuilder::new(8).seed(1);
    let service = ShardedService::with_partitioner(
        build_shards(EngineKind::Parallel, &builder, 2),
        Box::new(RangePartitioner::new(8)),
    );
    assert_eq!(service.num_shards(), 2);
    assert_eq!(service.num_vertices(), 8);
    assert_eq!(service.shard_of_vertex(VertexId(3)), 0);
    assert_eq!(service.shard_of_vertex(VertexId(4)), 1);
    assert!(service.contains_vertex(VertexId(7)));
    assert!(!service.contains_vertex(VertexId(8)));

    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    // Edge 0: shard-local on 0.  Edge 1: cross, owned by shard 0 (min endpoint
    // 1).  Edge 2: shard-local on 1.
    let routed = service
        .submit(UpdateBatch::new(vec![pair(0, 0, 1), pair(1, 1, 6), pair(2, 4, 5)]).unwrap());
    assert_eq!(routed.per_shard, vec![2, 1]);
    assert_eq!(routed.cross_shard, 1);
    assert_eq!(routed.routed(), 3);
    assert_eq!(routed.sub_batches(), 2);
    let report = service.drain().unwrap();
    assert_eq!(report.committed, 2);
    assert_eq!(report.matching_size, service.snapshot().size());
    assert_eq!(service.owner_of_edge(EdgeId(1)), Some(0));
    assert_eq!(service.owner_of_edge(EdgeId(2)), Some(1));
    assert!(service.is_cross_shard(EdgeId(1)));
    assert!(!service.is_cross_shard(EdgeId(0)));

    // The deletion of the cross-shard edge follows the edge to shard 0.
    let routed = service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(1))]).unwrap());
    assert_eq!(routed.per_shard, vec![1, 0]);
    assert_eq!(routed.cross_shard, 1);
    service.drain().unwrap();
    assert_eq!(service.owner_of_edge(EdgeId(1)), None);
    assert!(!service.is_cross_shard(EdgeId(1)));
    let snap = service.snapshot();
    assert_eq!(snap.edge_ids(), vec![EdgeId(0), EdgeId(2)]);
    assert_eq!(snap.matched_edge_of(VertexId(4)), Some(EdgeId(2)));
    assert!(snap.is_matched(VertexId(0)));
    assert!(!snap.is_matched(VertexId(6)));

    // An empty batch is a counted no-op on shard 0, like a bare service.
    let before = service.shard_snapshot(0).committed_batches();
    service.submit(UpdateBatch::empty());
    service.drain().unwrap();
    assert_eq!(service.shard_snapshot(0).committed_batches(), before + 1);
}

#[test]
fn reinserting_a_live_id_is_rejected_on_its_holder_never_double_inserted() {
    // Range partitioning over 8 vertices, 2 shards.  Edge 0 lives on shard 0;
    // a batch re-inserting id 0 with endpoints owned by shard 1 is
    // context-free valid (constructors assume ids fresh), so only routing can
    // uphold the never-double-inserted invariant: the insert must go to the
    // *holder*, whose engine rejects it exactly like a bare service.
    let builder = EngineBuilder::new(8).seed(4);
    let service = ShardedService::with_partitioner(
        build_shards(EngineKind::Parallel, &builder, 2),
        Box::new(RangePartitioner::new(8)),
    );
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1)]).unwrap());
    service.drain().unwrap();

    // Strict drain: the duplicate goes to shard 0 (the holder), which refuses
    // it with the bare-service error; shard 1 never sees id 0.
    let routed = service.submit(UpdateBatch::new(vec![pair(0, 5, 6)]).unwrap());
    assert_eq!(routed.per_shard, vec![1, 0], "routed to the holder");
    let err = service.drain().unwrap_err();
    assert_eq!(err.shard, 0);
    assert_eq!(
        err.error.error,
        BatchError::DuplicateEdgeId { id: EdgeId(0) }
    );
    assert_eq!(service.owner_of_edge(EdgeId(0)), Some(0));
    let snap = service.snapshot();
    assert_eq!(
        snap.edge_ids(),
        vec![EdgeId(0)],
        "the id exists exactly once"
    );
    assert_eq!(snap.shard(1).size(), 0);

    // Lossy drain: same routing, reported instead of poisoning.
    service.submit(UpdateBatch::new(vec![pair(0, 5, 6), pair(1, 4, 5)]).unwrap());
    let report = service.drain_lossy();
    assert_eq!(report.rejected, 1);
    assert_eq!(
        report.per_shard[0][0].rejected[0].error,
        BatchError::DuplicateEdgeId { id: EdgeId(0) }
    );
    // The legitimate insert landed; the duplicate did not.
    let snap = service.snapshot();
    assert_eq!(snap.edge_ids(), vec![EdgeId(0), EdgeId(1)]);
    // Deleting id 0 still follows the (single) holder.
    let routed = service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(0))]).unwrap());
    assert_eq!(routed.per_shard, vec![1, 0]);
    service.drain().unwrap();
    assert_eq!(service.snapshot().edge_ids(), vec![EdgeId(1)]);
}

#[test]
fn a_failed_shard_drain_still_reports_its_prior_commits() {
    let builder = EngineBuilder::new(8).seed(6);
    let service = ShardedService::new(build_shards(EngineKind::Parallel, &builder, 2));
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    // Two good batches, then a poison deletion (routes to shard 0), then the
    // good tail: the error's partial report must include every commit, on the
    // failing shard too.
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1), pair(1, 2, 3)]).unwrap());
    service.submit(UpdateBatch::new(vec![pair(2, 4, 5)]).unwrap());
    service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(50))]).unwrap());
    let err = service.drain().unwrap_err();
    assert_eq!(err.shard, 0);
    assert_eq!(
        err.error.error,
        BatchError::UnknownDeletion { id: EdgeId(50) }
    );
    assert_eq!(err.error.reports.len(), err.error.committed);
    let committed_everywhere: usize = err.partial.per_shard.iter().map(Vec::len).sum();
    assert_eq!(
        committed_everywhere, err.partial.committed,
        "partial report is internally consistent"
    );
    // Every sub-batch of the two good batches committed somewhere.
    let committed_updates: u64 = err.partial.metrics.updates;
    assert_eq!(committed_updates, 3, "all three inserts committed");
}

#[test]
fn unroutable_deletions_surface_the_same_typed_error() {
    let builder = EngineBuilder::new(16).seed(2);
    let service = ShardedService::new(build_shards(EngineKind::Parallel, &builder, 4));
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1)]).unwrap());
    service.drain().unwrap();

    // Deleting an id nobody inserted routes deterministically to shard 0 and
    // fails there with the exact error a bare service reports.
    service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(99))]).unwrap());
    let err = service.drain().unwrap_err();
    assert_eq!(err.shard, 0);
    assert_eq!(
        err.error.error,
        BatchError::UnknownDeletion { id: EdgeId(99) }
    );
    assert!(err.to_string().contains("shard 0"), "{err}");
    // Per-shard atomicity: nothing else was affected, and the service keeps
    // serving.
    assert_eq!(service.snapshot().size(), 1);
    service.submit(UpdateBatch::new(vec![pair(1, 2, 3)]).unwrap());
    service.drain().unwrap();
    assert_eq!(service.snapshot().size(), 2);
}

#[test]
fn sharded_drain_lossy_skips_and_merges_reports() {
    let workload = shard_workload();
    for &shards in &[1usize, 4] {
        let builder = builder_for(&workload, 13);
        let service = ShardedService::new(build_shards(EngineKind::Parallel, &builder, shards));
        let mut rejected = 0usize;
        for batch in &workload.batches {
            service.submit(batch.clone());
            // Poison riders: unknown deletions are context-free-valid, so
            // they pass UpdateBatch::new but must be skipped at drain.
            service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(1_000_000))]).unwrap());
            let report = service.drain_lossy();
            rejected += report.rejected;
            assert_eq!(report.deduplicated, 0);
        }
        assert_eq!(rejected, workload.batches.len(), "{shards} shards");

        // The lossy drain committed exactly the clean stream: snapshot and
        // journals match a strict twin's.
        let twin = ShardedService::new(build_shards(EngineKind::Parallel, &builder, shards));
        drive(&twin, &workload);
        assert_eq!(
            service.snapshot().edge_ids(),
            twin.snapshot().edge_ids(),
            "{shards} shards"
        );
        for k in 0..shards {
            assert_eq!(
                service.shard_journal(k),
                twin.shard_journal(k),
                "shard {k}/{shards}: lossy journal must hold the survivors"
            );
        }
    }
}

#[test]
fn replay_rejects_malformed_and_mismatched_journals() {
    let builder = EngineBuilder::new(8).seed(3);
    assert!(matches!(
        ShardedService::replay(build_shards(EngineKind::Parallel, &builder, 2), "* junk"),
        Err(ShardedReplayError::Parse(_))
    ));
    // A tag beyond the engine count.
    let err = ShardedService::replay(
        build_shards(EngineKind::Parallel, &builder, 2),
        "@ 5\n+ 0 1 2\n",
    )
    .unwrap_err();
    assert_eq!(
        err,
        ShardedReplayError::ShardOutOfRange {
            shard: ShardId(5),
            num_shards: 2
        }
    );
    assert!(err.to_string().contains("shard s5"), "{err}");
    // A journal whose batch the shard refuses (deletes a never-inserted id).
    let err = ShardedService::replay(
        build_shards(EngineKind::Parallel, &builder, 2),
        "@ 1\n- 7\n",
    )
    .unwrap_err();
    assert!(
        matches!(&err, ShardedReplayError::Shard { shard: 1, error }
            if error.error == BatchError::UnknownDeletion { id: EdgeId(7) }),
        "{err}"
    );
}

/// `try_submit` is all-or-nothing: a bounce enqueues nothing anywhere, leaves
/// no router trace, and hands the batch back in its exact submission order —
/// even though routing had already split it across shards.
#[test]
fn try_submit_is_all_or_nothing_and_hands_the_batch_back_intact() {
    let n = 8;
    let engine = || engine::build(EngineKind::Parallel, &EngineBuilder::new(n).seed(2));
    let services = vec![
        EngineService::with_queue_capacity(engine(), 1),
        EngineService::with_queue_capacity(engine(), 1),
    ];
    // RangePartitioner: vertices 0..4 on shard 0, 4..8 on shard 1.
    let service = ShardedService::from_services(services, Box::new(RangePartitioner::new(n)));
    let insert = |id: u64, a: u32, b: u32| {
        Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)))
    };
    // Interleave shard-0 and shard-1 updates so order restoration is visible.
    let batch_a = UpdateBatch::new(vec![
        insert(0, 0, 1),
        insert(1, 4, 5),
        insert(2, 2, 3),
        insert(3, 6, 7),
    ])
    .unwrap();
    let batch_b = UpdateBatch::new(vec![
        insert(10, 4, 5),
        insert(11, 0, 1),
        insert(12, 6, 7),
        insert(13, 2, 3),
    ])
    .unwrap();

    let report = service.try_submit(batch_a.clone()).unwrap();
    assert_eq!(report.per_shard, vec![2, 2]);

    // Both queues are now at capacity 1: the second batch must bounce whole.
    let bounced = service.try_submit(batch_b.clone()).unwrap_err();
    assert_eq!(
        bounced.updates(),
        batch_b.updates(),
        "original order restored"
    );
    assert_eq!(service.queue_len(), 2, "nothing was enqueued");
    assert_eq!(service.owner_of_edge(EdgeId(10)), None, "no router trace");
    assert_eq!(service.owner_of_edge(EdgeId(0)), Some(0));

    // Partially-full is still a bounce: fill only shard 0, then try a batch
    // needing both shards — shard 1's queue must stay untouched.
    service.drain().unwrap();
    let report = service
        .try_submit(UpdateBatch::new(vec![insert(20, 0, 2)]).unwrap())
        .unwrap();
    assert_eq!(report.per_shard, vec![1, 0]);
    let bounced = service.try_submit(bounced).unwrap_err();
    assert_eq!(service.queue_len(), 1, "shard 1 must not keep a sub-batch");

    // With room everywhere the same batch is admitted and commits.
    service.drain().unwrap();
    let report = service.try_submit(bounced).unwrap();
    assert_eq!(report.per_shard, vec![2, 2]);
    service.drain().unwrap();
    // Every admitted sub-batch committed: 2 (batch A) + 1 + 2 (batch B).
    assert_eq!(service.snapshot().committed_batches(), 5);
    for id in [0u64, 1, 2, 3, 10, 11, 12, 13, 20] {
        assert!(service.owner_of_edge(EdgeId(id)).is_some(), "edge {id}");
    }
    // Edges 10–13 duplicate the matched vertex pairs of 0–3, so the maximal
    // matching is still exactly the first batch.
    let ids: Vec<u64> = service.snapshot().edge_ids().iter().map(|e| e.0).collect();
    assert_eq!(ids, vec![0, 1, 2, 3]);
}
