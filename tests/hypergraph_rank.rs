//! Hypergraph integration tests: the algorithm's rank-`r` generalisation
//! (Theorem 1.1 / 4.1) must maintain maximal matchings for ranks well beyond 2,
//! with `α = 4r` levels and the `1/r` approximation guarantee of §2.

use pdmm::hypergraph::matching::{maximum_matching_size_exact, verify_maximality};
use pdmm::hypergraph::streams;
use pdmm::hypergraph::{generators, DynamicHypergraph};
use pdmm::prelude::*;

fn run_rank(rank: usize, seed: u64) -> (ParallelDynamicMatching, DynamicHypergraph) {
    let n = 40 * rank;
    let w = streams::random_churn(n, rank, 200, 12, 40, 0.5, seed);
    assert!(streams::validate_workload(&w));
    let mut matcher = ParallelDynamicMatching::new(n, Config::for_hypergraphs(rank, seed ^ 0xABCD));
    let mut truth = DynamicHypergraph::new(n);
    for (i, batch) in w.batches.iter().enumerate() {
        truth.apply_batch(batch);
        matcher.apply_batch(batch).unwrap();
        assert_eq!(
            verify_maximality(&truth, &matcher.matching_ids()),
            Ok(()),
            "rank {rank} broke maximality at batch {i}"
        );
        matcher.verify_invariants().unwrap();
    }
    (matcher, truth)
}

#[test]
fn rank_three_churn_stays_maximal() {
    run_rank(3, 1);
}

#[test]
fn rank_four_churn_stays_maximal() {
    run_rank(4, 2);
}

#[test]
fn rank_six_churn_stays_maximal() {
    run_rank(6, 3);
}

#[test]
fn rank_eight_teardown_stays_maximal() {
    let rank = 8;
    let n = 200;
    let edges = generators::random_hypergraph(n, 400, rank, 4, 0);
    let w = streams::insert_then_teardown(n, edges, 50, 5);
    let mut matcher = ParallelDynamicMatching::new(n, Config::for_hypergraphs(rank, 9));
    let mut truth = DynamicHypergraph::new(n);
    for batch in &w.batches {
        truth.apply_batch(batch);
        matcher.apply_batch(batch).unwrap();
        assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
    }
    assert_eq!(matcher.matching_size(), 0);
    matcher.verify_invariants().unwrap();
}

#[test]
fn alpha_and_levels_scale_with_rank() {
    let low = ParallelDynamicMatching::new(100, Config::for_hypergraphs(2, 0));
    let high = ParallelDynamicMatching::new(100, Config::for_hypergraphs(10, 0));
    // α = 4r, so the base of the leveling scheme grows and the number of levels
    // shrinks (L = ⌈log_α N⌉) as the rank goes up.
    assert!(high.num_levels() <= low.num_levels());
    assert!(low.num_levels() >= 2);
}

#[test]
fn maximal_matching_is_one_over_r_approximation() {
    // Small rank-3 instances where the exact optimum is computable by the
    // branch-and-bound reference: the dynamic maximal matching must be ≥ opt/3.
    for seed in 0..5u64 {
        let n = 18;
        let rank = 3;
        let edges = generators::random_hypergraph(n, 30, rank, seed, 0);
        let truth = DynamicHypergraph::from_edges(n, edges.clone());
        let mut matcher = ParallelDynamicMatching::new(n, Config::for_hypergraphs(rank, seed));
        matcher
            .apply_batch(&edges.into_iter().map(Update::Insert).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
        let opt = maximum_matching_size_exact(&truth);
        let got = matcher.matching_size();
        assert!(
            got * rank >= opt,
            "seed {seed}: maximal matching of size {got} is below opt {opt} / r"
        );
    }
}

#[test]
fn mixed_rank_edges_up_to_the_configured_maximum() {
    // The configuration fixes the *maximum* rank; smaller edges are fine too.
    let n = 60;
    let mut edges = generators::random_hypergraph(n, 60, 4, 7, 0);
    edges.extend(generators::gnm_graph(n, 60, 8, 1_000));
    let w = streams::insert_then_teardown(n, edges, 30, 3);
    let mut matcher = ParallelDynamicMatching::new(n, Config::for_hypergraphs(4, 2));
    let mut truth = DynamicHypergraph::new(n);
    for batch in &w.batches {
        truth.apply_batch(batch);
        matcher.apply_batch(batch).unwrap();
        assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
    }
    matcher.verify_invariants().unwrap();
}
