//! Property tests pinning the update-stream format of `pdmm::hypergraph::io`:
//!
//! * `batches_from_string ∘ batches_to_string` is the identity on streams of
//!   non-empty batches (the format cannot represent an empty batch — the
//!   serializer skips them, documented on `batches_to_string`);
//! * parsing is robust to decoration: comment lines *inside and between*
//!   blocks, extra blank lines between blocks, leading/trailing noise, and a
//!   trailing batch without a terminating newline all parse to the same
//!   stream;
//! * serialization is a canonical form: `serialize ∘ parse` is idempotent on
//!   any text that parses.

use pdmm::hypergraph::io::{batches_from_string, batches_to_string};
use pdmm::prelude::*;
use proptest::prelude::*;

/// Deterministically expands raw generator words into a *valid* stream of
/// non-empty batches: insertions draw fresh ids, deletions hit a pre-batch
/// live edge (skipped while nothing is live).
fn build_stream(words: &[(bool, u32, u32)], batch_size: usize, n: u32) -> Vec<UpdateBatch> {
    let mut live: Vec<EdgeId> = Vec::new();
    let mut next_id = 0u64;
    let mut batches = Vec::new();
    for chunk in words.chunks(batch_size.max(1)) {
        let mut updates = Vec::new();
        // Deletions may only name edges live before this batch (§3.3).
        let mut deletable = live.clone();
        for &(is_insert, a, b) in chunk {
            if is_insert || deletable.is_empty() {
                let (a, b) = (a % n, b % n);
                let edge = if a == b {
                    // Rank-1 self-loop: the format must carry those too.
                    HyperEdge::new(EdgeId(next_id), vec![VertexId(a)])
                } else {
                    HyperEdge::pair(EdgeId(next_id), VertexId(a), VertexId(b))
                };
                live.push(edge.id);
                next_id += 1;
                updates.push(Update::Insert(edge));
            } else {
                let id = deletable.swap_remove(a as usize % deletable.len());
                live.retain(|x| *x != id);
                updates.push(Update::Delete(id));
            }
        }
        if !updates.is_empty() {
            batches.push(UpdateBatch::new(updates).expect("construction keeps batches valid"));
        }
    }
    batches
}

/// Decorates a serialized stream without changing its meaning: comments are
/// legal *anywhere* (including inside a block), extra blank lines only at
/// block boundaries (a blank inside a block would legitimately split it).
fn decorate(text: &str, positions: &[u32], strip_trailing_newline: bool) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out: Vec<String> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if positions.contains(&(i as u32)) {
            out.push(format!("# decoration before line {i}"));
            if i == 0 || lines[i - 1].is_empty() || line.is_empty() {
                // At a block boundary: blank lines are also harmless.
                out.push(String::new());
            }
        }
        out.push((*line).to_string());
    }
    out.push("# trailing comment".to_string());
    if !strip_trailing_newline {
        out.push(String::new());
    }
    let mut joined = out.join("\n");
    if !strip_trailing_newline {
        joined.push('\n');
    }
    joined
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_then_parse_is_identity(
        words in proptest::collection::vec((proptest::bool::ANY, 0u32..64, 0u32..64), 0..120),
        batch_size in 1usize..12,
    ) {
        let batches = build_stream(&words, batch_size, 64);
        let text = batches_to_string(&batches);
        let parsed = batches_from_string(&text).expect("serialized streams parse");
        prop_assert_eq!(parsed, batches);
    }

    #[test]
    fn parsing_survives_comments_and_blank_line_decoration(
        words in proptest::collection::vec((proptest::bool::ANY, 0u32..32, 0u32..32), 1..80),
        batch_size in 1usize..8,
        positions in proptest::collection::vec(0u32..200, 0..12),
        strip_newline in proptest::bool::ANY,
    ) {
        let batches = build_stream(&words, batch_size, 32);
        let text = batches_to_string(&batches);
        let decorated = decorate(&text, &positions, strip_newline);
        let parsed = batches_from_string(&decorated)
            .expect("decoration must not break parsing");
        prop_assert_eq!(parsed, batches);
    }

    #[test]
    fn serialization_is_a_canonical_form(
        words in proptest::collection::vec((proptest::bool::ANY, 0u32..32, 0u32..32), 0..80),
        batch_size in 1usize..8,
        positions in proptest::collection::vec(0u32..200, 0..12),
    ) {
        // serialize ∘ parse must be idempotent: parsing decorated text and
        // re-serializing yields exactly the canonical text.
        let batches = build_stream(&words, batch_size, 32);
        let canonical = batches_to_string(&batches);
        let decorated = decorate(&canonical, &positions, false);
        let reparsed = batches_from_string(&decorated).expect("decorated text parses");
        prop_assert_eq!(batches_to_string(&reparsed), canonical);
    }
}

#[test]
fn trailing_batch_without_final_newline_parses() {
    let batches = batches_from_string("+ 0 1 2\n\n- 0").unwrap();
    assert_eq!(batches.len(), 2);
    assert_eq!(batches[1].updates(), &[Update::Delete(EdgeId(0))]);
}

#[test]
fn comment_inside_a_block_does_not_split_the_batch() {
    let text = "+ 0 1 2\n# a comment inside the block\n+ 1 3 4\n";
    let batches = batches_from_string(text).unwrap();
    assert_eq!(batches.len(), 1, "a comment line must not split a batch");
    assert_eq!(batches[0].len(), 2);
}

#[test]
fn whitespace_only_lines_separate_batches_like_blank_ones() {
    // A line of spaces/tabs trims to empty and therefore acts as a separator —
    // pinned so editors that strip or add trailing whitespace cannot change
    // how a stream file splits into batches.
    let with_blank = batches_from_string("+ 0 1 2\n\n+ 1 3 4\n").unwrap();
    let with_spaces = batches_from_string("+ 0 1 2\n \t \n+ 1 3 4\n").unwrap();
    assert_eq!(with_blank, with_spaces);
    assert_eq!(with_blank.len(), 2);
}

#[test]
fn parse_errors_carry_one_based_line_numbers_across_batches() {
    // The line number is global over the whole multi-batch input — comments
    // and blank separators count — so a protocol `ERR` (or a corrupted
    // workload file) can point at the exact offending line.
    let text = "# header\n+ 0 1 2\n\n+ 1 3 4\n- 0\n\n+ 2 bad 5\n";
    let err = pdmm::hypergraph::io::batches_from_string(text).unwrap_err();
    assert_eq!(err.line, 7);
    assert_eq!(err.to_string(), format!("line 7: {}", err.message));

    // Batch-validation errors point at the offending line, too — here the
    // repeated id in the second block.
    let text = "+ 0 1 2\n\n+ 1 3 4\n+ 1 3 4\n";
    let err = pdmm::hypergraph::io::batches_from_string(text).unwrap_err();
    assert_eq!(err.line, 4);
    assert!(err.message.contains("repeated update"), "{}", err.message);
}
