//! Property-based integration tests (proptest): arbitrary small update streams,
//! arbitrary batchings and arbitrary ranks must never break validity, maximality or
//! the structural invariants of the parallel dynamic algorithm.

use pdmm::hypergraph::matching::{verify_maximality, verify_validity};
use pdmm::hypergraph::streams::{random_churn, validate_workload};
use pdmm::prelude::*;
use proptest::prelude::*;

/// Builds a small random workload directly from proptest-chosen parameters.
fn workload(
    n: usize,
    rank: usize,
    batches: usize,
    batch_size: usize,
    p_insert: f64,
    seed: u64,
) -> pdmm::hypergraph::Workload {
    random_churn(n, rank, n / 2, batches, batch_size, p_insert, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn prop_parallel_matcher_stays_maximal_on_graphs(
        seed in 0u64..10_000,
        alg_seed in 0u64..100,
        batch_size in 1usize..40,
        p_insert in 0.25f64..0.75,
    ) {
        let w = workload(50, 2, 8, batch_size, p_insert, seed);
        prop_assume!(validate_workload(&w));
        let mut matcher = ParallelDynamicMatching::new(w.num_vertices, Config::for_graphs(alg_seed));
        let mut truth = DynamicHypergraph::new(w.num_vertices);
        for batch in &w.batches {
            truth.apply_batch(batch);
            matcher.apply_batch(batch).unwrap();
            let ids = matcher.matching_ids();
            prop_assert_eq!(verify_validity(&truth, &ids), Ok(()));
            prop_assert_eq!(verify_maximality(&truth, &ids), Ok(()));
        }
        prop_assert!(matcher.verify_invariants().is_ok());
    }

    #[test]
    fn prop_parallel_matcher_stays_maximal_on_hypergraphs(
        seed in 0u64..5_000,
        rank in 2usize..5,
        batch_size in 1usize..25,
    ) {
        let w = workload(40, rank, 6, batch_size, 0.5, seed);
        prop_assume!(validate_workload(&w));
        let mut matcher =
            ParallelDynamicMatching::new(w.num_vertices, Config::for_hypergraphs(rank, seed ^ 1));
        let mut truth = DynamicHypergraph::new(w.num_vertices);
        for batch in &w.batches {
            truth.apply_batch(batch);
            matcher.apply_batch(batch).unwrap();
            prop_assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
        }
        prop_assert!(matcher.verify_invariants().is_ok());
    }

    #[test]
    fn prop_ablation_configurations_stay_maximal(
        seed in 0u64..2_000,
        sequential in proptest::bool::ANY,
        settle_after_insert in proptest::bool::ANY,
    ) {
        let w = workload(40, 2, 6, 20, 0.5, seed);
        prop_assume!(validate_workload(&w));
        let mut config = Config::for_graphs(seed ^ 7);
        config.sequential_settle = sequential;
        config.settle_after_insert = settle_after_insert;
        let mut matcher = ParallelDynamicMatching::new(w.num_vertices, config);
        let mut truth = DynamicHypergraph::new(w.num_vertices);
        for batch in &w.batches {
            truth.apply_batch(batch);
            matcher.apply_batch(batch).unwrap();
            prop_assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
        }
        prop_assert!(matcher.verify_invariants().is_ok());
    }

    #[test]
    fn prop_work_is_bounded_per_update(
        seed in 0u64..2_000,
        batch_size in 1usize..30,
    ) {
        // A coarse sanity bound on amortized work per update: polylogarithmic in
        // theory, so certainly far below the naive O(n · m) blow-up.  The constant
        // here is deliberately generous — the precise scaling is measured by the
        // benchmark harness (E3), not asserted in a property test.
        let w = workload(60, 2, 10, batch_size, 0.5, seed);
        prop_assume!(validate_workload(&w));
        let mut matcher = ParallelDynamicMatching::new(w.num_vertices, Config::for_graphs(3));
        for batch in &w.batches {
            matcher.apply_batch(batch).unwrap();
        }
        let updates = matcher.metrics().updates.max(1);
        let per_update = matcher.cost().total_work() as f64 / updates as f64;
        prop_assert!(
            per_update < 50_000.0,
            "amortized work per update unexpectedly large: {per_update}"
        );
    }
}
