//! Batching-robustness integration tests.
//!
//! The defining feature of the paper's algorithm is that it accepts *any* batch
//! size: one giant batch, single-update batches (the sequential dynamic regime), or
//! anything in between.  These tests replay the same underlying update sequence
//! under different batchings and check that correctness (validity, maximality,
//! invariants) never depends on how the sequence was chopped up, and that the depth
//! per batch does not blow up with the batch size.

use pdmm::hypergraph::matching::verify_maximality;
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::prelude::*;

/// Flattens a workload into one long update sequence and re-batches it.
///
/// A batch's deletions are processed before its insertions (§3.3), so a deletion
/// must never share a batch with the insertion of the edge it targets: whenever
/// that would happen, the current batch is flushed early.
fn rebatch(workload: &Workload, batch_size: usize) -> Workload {
    let updates: Vec<Update> = workload.batches.iter().flatten().cloned().collect();
    rebatch_updates(&updates, batch_size, workload)
}

/// Re-batches an explicit update sequence under the same same-batch constraint.
fn rebatch_updates(updates: &[Update], batch_size: usize, proto: &Workload) -> Workload {
    let mut batches: Vec<UpdateBatch> = Vec::new();
    let mut current: Vec<Update> = Vec::new();
    let mut inserted_in_current: std::collections::HashSet<EdgeId> =
        std::collections::HashSet::new();
    let seal = |updates: Vec<Update>| UpdateBatch::new(updates).expect("rebatching stays valid");
    for update in updates {
        let conflicts = matches!(update, Update::Delete(id) if inserted_in_current.contains(id));
        if current.len() >= batch_size || conflicts {
            batches.push(seal(std::mem::take(&mut current)));
            inserted_in_current.clear();
        }
        if let Update::Insert(e) = update {
            inserted_in_current.insert(e.id);
        }
        current.push(update.clone());
    }
    if !current.is_empty() {
        batches.push(seal(current));
    }
    Workload {
        num_vertices: proto.num_vertices,
        rank: proto.rank,
        batches,
        name: format!("{} rebatched({batch_size})", proto.name),
    }
}

fn run(workload: &Workload, seed: u64) -> ParallelDynamicMatching {
    let mut matcher = ParallelDynamicMatching::new(
        workload.num_vertices,
        Config::for_hypergraphs(workload.rank, seed),
    );
    let mut truth = DynamicHypergraph::new(workload.num_vertices);
    for batch in &workload.batches {
        truth.apply_batch(batch);
        matcher.apply_batch(batch).unwrap();
        assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
    }
    matcher.verify_invariants().unwrap();
    matcher
}

/// Base sequence used by the re-batching tests: insertions followed by a random
/// teardown, which guarantees every deletion's target was inserted in an earlier
/// chunk for every batch size we test with.
fn base_workload() -> Workload {
    let edges = pdmm::hypergraph::generators::gnm_graph(120, 600, 3, 0);
    streams::insert_then_teardown(120, edges, 1, 9)
}

#[test]
fn different_batch_sizes_all_stay_correct() {
    let base = base_workload();
    for &batch_size in &[1usize, 7, 64, 300, 1200] {
        let w = rebatch(&base, batch_size);
        assert!(
            streams::validate_workload(&w),
            "rebatched({batch_size}) is malformed"
        );
        let matcher = run(&w, 5);
        assert_eq!(
            matcher.matching_size(),
            0,
            "teardown must empty the matching for batch size {batch_size}"
        );
    }
}

#[test]
fn final_matching_sizes_are_comparable_across_batchings() {
    // Stop the teardown halfway so the final matching is non-trivial, then check
    // that all batchings produce matchings of comparable size (all maximal
    // matchings of the same graph are within a factor 2 of each other).
    let base = base_workload();
    let updates: Vec<Update> = base.batches.iter().flatten().cloned().collect();
    let prefix = &updates[..updates.len() * 3 / 4];
    let mut sizes = Vec::new();
    for &batch_size in &[1usize, 16, 128, 2048] {
        let w = rebatch_updates(prefix, batch_size, &base);
        let matcher = run(&w, 11);
        sizes.push(matcher.matching_size());
    }
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(min * 2 >= max, "matching sizes across batchings: {sizes:?}");
}

#[test]
fn depth_per_batch_stays_flat_as_batches_grow() {
    // Theorem 4.4 in practice: processing one batch of k updates takes far fewer
    // rounds than processing k single-update batches.
    let base = base_workload();
    let updates: Vec<Update> = base.batches.iter().flatten().cloned().collect();

    let mut single = ParallelDynamicMatching::new(base.num_vertices, Config::for_graphs(3));
    let mut single_max_depth = 0u64;
    let mut single_total_depth = 0u64;
    for u in &updates {
        let report = single.apply_batch(std::slice::from_ref(u)).unwrap();
        single_max_depth = single_max_depth.max(report.depth);
        single_total_depth += report.depth;
    }

    let mut batched = ParallelDynamicMatching::new(base.num_vertices, Config::for_graphs(3));
    let mut batched_max_depth = 0u64;
    let mut batched_total_depth = 0u64;
    for batch in &rebatch_updates(&updates, 300, &base).batches {
        let report = batched.apply_batch(batch).unwrap();
        batched_max_depth = batched_max_depth.max(report.depth);
        batched_total_depth += report.depth;
    }

    // The depth of one large batch is of the same order as the depth of a single
    // update (both polylog), so the *total* depth collapses when batching.
    assert!(
        batched_total_depth * 5 < single_total_depth,
        "batched total depth {batched_total_depth} should be far below one-by-one total depth {single_total_depth}"
    );
    // And no single large batch costs more than a small multiple of the deepest
    // single-update batch (both are polylogarithmic).
    assert!(
        batched_max_depth < single_max_depth * 50 + 200,
        "per-batch depth exploded: batched max {batched_max_depth}, single max {single_max_depth}"
    );
}

#[test]
fn deterministic_for_a_fixed_seed() {
    let base = base_workload();
    let w = rebatch(&base, 64);
    let a = run(&w, 77);
    let b = run(&w, 77);
    let mut ma = a.matching_ids();
    let mut mb = b.matching_ids();
    ma.sort_unstable();
    mb.sort_unstable();
    assert_eq!(
        ma, mb,
        "same seed and same stream must give the same matching"
    );
    assert_eq!(a.cost().total_work(), b.cost().total_work());
    assert_eq!(a.cost().total_depth(), b.cost().total_depth());
}

#[test]
fn different_seeds_still_give_valid_maximal_matchings() {
    let base = base_workload();
    let updates: Vec<Update> = base.batches.iter().flatten().cloned().collect();
    let prefix = &updates[..updates.len() / 2];
    let w = rebatch_updates(prefix, 50, &base);
    let sizes: Vec<usize> = (0..4).map(|seed| run(&w, seed).matching_size()).collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    assert!(min * 2 >= max, "sizes across seeds: {sizes:?}");
}
