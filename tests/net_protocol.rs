//! Protocol-level tests of the TCP front-end: malformed, truncated and
//! interleaved frames must never panic the server, `ERR` responses must name
//! the offending per-connection line, and the journal's `@ <shard>` framing
//! must stay internal to the server.

use pdmm::net::{serve, DrainMode, Response, ServerConfig, ServerHandle};
use pdmm::prelude::*;
use pdmm::service::EngineService;
use pdmm::sharding::HashPartitioner;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

/// A small single-shard server with a manual drainer, so queue depths (and
/// therefore responses) are fully deterministic.
fn server(queue_capacity: usize) -> ServerHandle {
    let engine = pdmm::engine::build(EngineKind::NaiveSequential, &EngineBuilder::new(16).seed(1));
    let service = Arc::new(ShardedService::from_services(
        vec![EngineService::with_queue_capacity(engine, queue_capacity)],
        Box::new(HashPartitioner),
    ));
    let config = ServerConfig {
        connection_threads: 1,
        drain: DrainMode::Manual,
        ..ServerConfig::default()
    };
    serve(service, "127.0.0.1:0", config).unwrap()
}

/// Reads every response line until the server closes the connection.
fn read_all_responses(stream: TcpStream) -> Vec<String> {
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).unwrap() == 0 {
            return lines;
        }
        lines.push(line.trim().to_string());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary garbage — valid lines, journal framing, printable junk, raw
    /// non-UTF-8 bytes, stray blanks — never kills the connection: every
    /// response stays parseable and a sentinel batch submitted after a resync
    /// is still admitted.
    #[test]
    fn prop_garbage_never_panics_the_server(seed in 0u64..1_000_000) {
        let handle = server(64);
        let service = Arc::clone(handle.service());
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();

        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        let mut garbage: Vec<u8> = Vec::new();
        for _ in 0..(1 + next() % 24) {
            match next() % 6 {
                0 => garbage.extend_from_slice(b"+ 1 2 3\n"),
                1 => garbage.extend_from_slice(b"- 3\n"),
                2 => garbage.extend_from_slice(b"@ 0\n"), // journal-internal framing
                3 => garbage.push(b'\n'),
                4 => {
                    for _ in 0..next() % 12 {
                        garbage.push(32 + (next() % 95) as u8);
                    }
                    garbage.push(b'\n');
                }
                _ => {
                    for _ in 0..(1 + next() % 8) {
                        let byte = (next() % 256) as u8;
                        garbage.push(if byte == b'\n' { 0xFF } else { byte });
                    }
                    garbage.push(b'\n');
                }
            }
        }
        stream.write_all(&garbage).unwrap();
        // Resynchronize (flushes or un-poisons whatever the garbage left
        // half-built) and submit a well-formed sentinel batch.
        stream.write_all(b"\n\n+ 424242 4 5\n\n").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();

        let lines = read_all_responses(stream);
        let responses: Vec<Response> = lines
            .iter()
            .map(|l| Response::parse(l).unwrap_or_else(|| panic!("unparseable response {l:?}")))
            .collect();
        prop_assert!(!responses.is_empty());
        prop_assert_eq!(
            responses.last().unwrap(),
            &Response::Ok { updates: 1, sub_batches: 1, cross_shard: 0 }
        );
        // The server survives a full drain of whatever was admitted, too.
        let _ = handle.drain_now();
        prop_assert!(service.queue_len() == 0);
    }
}

/// A batch truncated by connection loss (no terminating blank line) earns no
/// response and never commits.
#[test]
fn truncated_batch_never_commits() {
    let handle = server(8);
    let service = Arc::clone(handle.service());
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(b"+ 7 1 2\n+ 8 3 4\n").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no blank line, no response: {rest:?}");

    let stats = handle.shutdown();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(service.snapshot().committed_batches(), 0);
    assert!(service.snapshot().edge_ids().is_empty());
}

/// Interleaving valid batches with malformed ones: the `ERR` names the
/// offending 1-based per-connection line, the rest of the poisoned batch is
/// swallowed, and the next blank line fully resynchronizes the stream.
#[test]
fn err_names_the_offending_line_and_resyncs() {
    let handle = server(8);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let input = concat!(
        "+ 1 0 1\n", // line 1
        "\n",        // line 2: submits -> OK
        "# note\n",  // line 3: comment
        "+ 2 x y\n", // line 4: malformed vertex id -> ERR, poisons
        "- 9\n",     // line 5: swallowed
        "\n",        // line 6: resync, no response
        "@ 0\n",     // line 7: journal framing is not client vocabulary -> ERR
        "\n",        // line 8: resync
        "+ 3 2 3\n", // line 9
        "+ 3 2 3\n", // line 10: repeated update in one batch -> ERR
        "\n",        // line 11: resync
        "+ 4 4 5\n", // line 12
        "\n",        // line 13: submits -> OK
    );
    stream.write_all(input.as_bytes()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();

    let lines = read_all_responses(stream);
    assert_eq!(lines.len(), 5, "{lines:?}");
    for ok in [&lines[0], &lines[4]] {
        assert_eq!(
            Response::parse(ok),
            Some(Response::Ok {
                updates: 1,
                sub_batches: 1,
                cross_shard: 0
            })
        );
    }
    for (response, line) in [(&lines[1], 4), (&lines[2], 7), (&lines[3], 10)] {
        match Response::parse(response) {
            Some(Response::Error { message }) => assert!(
                message.starts_with(&format!("line {line}:")),
                "expected line {line} in {message:?}"
            ),
            other => panic!("expected ERR, got {other:?}"),
        }
    }
    // `@` specifically is rejected as an unknown operation.
    assert!(lines[2].contains("unknown operation `@`"), "{:?}", lines[2]);

    let probe = TcpStream::connect(handle.local_addr()).unwrap();
    probe.shutdown(Shutdown::Write).unwrap();
    let response = read_all_responses(probe);
    assert!(response.is_empty());
    let stats = handle.shutdown();
    assert_eq!(stats.admitted, 2, "poisoned batches must not commit");
    assert_eq!(stats.protocol_errors, 3);
}

/// An oversized batch is a protocol error (poison), not backpressure.
#[test]
fn oversized_batch_is_a_protocol_error() {
    let engine = pdmm::engine::build(EngineKind::NaiveSequential, &EngineBuilder::new(16).seed(1));
    let service = Arc::new(ShardedService::from_services(
        vec![EngineService::new(engine)],
        Box::new(HashPartitioner),
    ));
    let config = ServerConfig {
        policy: pdmm::net::AdmissionPolicy {
            max_batch_updates: 3,
            ..Default::default()
        },
        connection_threads: 1,
        drain: DrainMode::Manual,
        ..ServerConfig::default()
    };
    let handle = serve(service, "127.0.0.1:0", config).unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut input = String::new();
    for id in 0..5 {
        input.push_str(&format!("+ {id} {} {}\n", 2 * id % 16, (2 * id + 1) % 16));
    }
    input.push('\n');
    stream.write_all(input.as_bytes()).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();

    let lines = read_all_responses(stream);
    assert_eq!(lines.len(), 1, "{lines:?}");
    match Response::parse(&lines[0]) {
        Some(Response::Error { message }) => {
            assert!(
                message.starts_with("line 4:") && message.contains("max_batch_updates"),
                "{message:?}"
            );
        }
        other => panic!("expected ERR, got {other:?}"),
    }
    let stats = handle.shutdown();
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.retried + stats.shed, 0);
    assert_eq!(stats.protocol_errors, 1);
}
