//! Reactor-specific behavior of the TCP front-end: connection scale on a
//! fixed thread count, per-client fairness budgets, the pipelining limit,
//! slow-client and idle disconnects, connection-level admission, and
//! garbage-resilience of the event loop.  (Bit-identical equivalence of
//! reactor ≡ threaded ≡ offline on every engine lives in `net_e2e.rs`.)

use pdmm::net::{
    frame_batch, serve, AdmissionPolicy, DrainMode, FairnessPolicy, IoModel, Response,
    ServerConfig, ServerHandle, ServerStats,
};
use pdmm::prelude::*;
use pdmm::sharding::ShardedService;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service(num_vertices: usize, shards: usize) -> Arc<ShardedService> {
    let builder = EngineBuilder::new(num_vertices).seed(9);
    let engines = (0..shards)
        .map(|_| pdmm::engine::build(EngineKind::Parallel, &builder))
        .collect();
    Arc::new(ShardedService::new(engines))
}

fn reactor_config() -> ServerConfig {
    ServerConfig {
        io_model: IoModel::Reactor,
        ..ServerConfig::default()
    }
}

fn pair_batch(id: u64, num_vertices: u32) -> UpdateBatch {
    UpdateBatch::new(vec![Update::Insert(HyperEdge::pair(
        EdgeId(id),
        VertexId((2 * id) as u32 % num_vertices),
        VertexId((2 * id + 1) as u32 % num_vertices),
    ))])
    .unwrap()
}

fn submit(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    batch: &UpdateBatch,
) -> Response {
    stream.write_all(frame_batch(batch).as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    Response::parse(&line).unwrap_or_else(|| panic!("unparseable response: {line:?}"))
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Polls `handle.stats()` until `predicate` holds or the deadline passes.
fn wait_for_stats(handle: &ServerHandle, predicate: impl Fn(&ServerStats) -> bool) -> ServerStats {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = handle.stats();
        if predicate(&stats) || Instant::now() >= deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A byte-at-a-time sender is just a very slow client: the reactor must
/// assemble lines across arbitrarily many partial reads and answer exactly
/// as if the script had arrived in one write.
#[test]
fn byte_at_a_time_slow_sender_is_assembled_correctly() {
    let service = service(16, 2);
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", reactor_config()).unwrap();
    let (mut stream, mut reader) = connect(&handle);

    // Three valid batches, one garbage batch: OK, OK, ERR, OK.
    let script = "+ 1 0 1\n\n+ 2 2 3\n\nnonsense\n\n- 1\n\n";
    for byte in script.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut responses = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        responses.push(Response::parse(&line).unwrap());
    }
    assert!(matches!(responses[0], Response::Ok { updates: 1, .. }));
    assert!(matches!(responses[1], Response::Ok { updates: 1, .. }));
    assert!(
        matches!(&responses[2], Response::Error { message } if message.starts_with("line 5:")),
        "{:?}",
        responses[2]
    );
    assert!(matches!(responses[3], Response::Ok { updates: 1, .. }));

    drop((stream, reader));
    let stats = handle.shutdown();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(service.snapshot().edge_ids(), vec![EdgeId(2)]);
}

/// The PR-6 bug: a client that stops reading mid-response used to wedge its
/// pool task in a blocking `write` forever.  Under both models the server
/// must instead disconnect the slow client (bounded write buffer in the
/// reactor, write timeout in the threaded model) and keep serving others.
#[test]
fn slow_reader_is_disconnected_not_wedged() {
    for io_model in [IoModel::Reactor, IoModel::Threaded] {
        let service = service(16, 1);
        let config = ServerConfig {
            io_model,
            fairness: FairnessPolicy {
                write_buffer_limit: 1024,
                batch_budget: 1024,
                ..FairnessPolicy::default()
            },
            write_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        };
        let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

        // The slow client floods cheap protocol errors (each garbage frame
        // earns an ~40-byte ERR line) and never reads a single response, so
        // kernel buffers fill and the server-side write stops making
        // progress.
        let mut slow = TcpStream::connect(handle.local_addr()).unwrap();
        slow.set_write_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let garbage = "nonsense\n\n".repeat(512); // ~5 KiB, ~20 KiB of ERRs
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if slow.write_all(garbage.as_bytes()).is_err() {
                break; // server already dropped us
            }
            if handle.stats().disconnected_slow > 0 {
                break;
            }
        }
        let stats = wait_for_stats(&handle, |stats| stats.disconnected_slow > 0);
        assert!(
            stats.disconnected_slow >= 1,
            "{io_model:?}: slow client was never disconnected: {stats:?}"
        );

        // The loop (or pool) is not wedged: a well-behaved client is served.
        let (mut stream, mut reader) = connect(&handle);
        let response = submit(&mut stream, &mut reader, &pair_batch(7, 16));
        assert!(matches!(response, Response::Ok { .. }), "{io_model:?}");
        drop((stream, reader, slow));
        let _ = handle.shutdown();
    }
}

/// Idle-connection reaping under both models: a connection that goes silent
/// past `idle_timeout` is closed by the server and counted.
#[test]
fn idle_connections_are_reaped() {
    for io_model in [IoModel::Reactor, IoModel::Threaded] {
        let service = service(16, 1);
        let config = ServerConfig {
            io_model,
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServerConfig::default()
        };
        let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
        let (mut stream, mut reader) = connect(&handle);
        // Activity first, then silence: the timer must restart on traffic.
        let response = submit(&mut stream, &mut reader, &pair_batch(1, 16));
        assert!(matches!(response, Response::Ok { .. }), "{io_model:?}");

        // The server closes its side once the idle timeout passes; the
        // client observes EOF.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut byte = [0u8; 1];
        let read = stream.read(&mut byte);
        assert!(
            matches!(read, Ok(0)),
            "{io_model:?}: expected EOF from idle reaping, got {read:?}"
        );
        let stats = wait_for_stats(&handle, |stats| stats.disconnected_idle > 0);
        assert_eq!(stats.disconnected_idle, 1, "{io_model:?}");
        drop((stream, reader));
        let _ = handle.shutdown();
    }
}

/// Connection-level admission under both models: past `max_connections` live
/// connections, an accepted socket is told why and closed, and the slot
/// frees up when a live connection leaves.
#[test]
fn connection_limit_rejects_at_accept_and_recovers() {
    for io_model in [IoModel::Reactor, IoModel::Threaded] {
        let service = service(16, 1);
        let config = ServerConfig {
            io_model,
            policy: AdmissionPolicy {
                max_connections: 2,
                ..AdmissionPolicy::default()
            },
            ..ServerConfig::default()
        };
        let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

        let first = connect(&handle);
        let second = connect(&handle);
        // Both slots taken: the third connection is rejected with one typed
        // line, then EOF.
        let rejected = TcpStream::connect(handle.local_addr()).unwrap();
        rejected
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut line = String::new();
        BufReader::new(rejected.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert_eq!(line.trim(), "ERR connection limit reached", "{io_model:?}");
        let stats = wait_for_stats(&handle, |stats| stats.rejected_connections > 0);
        assert_eq!(stats.rejected_connections, 1, "{io_model:?}");
        assert_eq!(stats.connections, 2, "{io_model:?}");

        // Free one slot; a fresh connection is now admitted and served.
        drop(first);
        let deadline = Instant::now() + Duration::from_secs(5);
        let served = loop {
            let (mut stream, mut reader) = connect(&handle);
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            stream
                .write_all(frame_batch(&pair_batch(3, 16)).as_bytes())
                .unwrap();
            let mut line = String::new();
            // A probe racing the server's close of `first` is itself
            // rejected with the limit `ERR` — keep probing until one is
            // admitted or the deadline passes.
            if matches!(reader.read_line(&mut line), Ok(n) if n > 0)
                && matches!(Response::parse(&line), Some(Response::Ok { .. }))
            {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(served, "{io_model:?}: slot never freed after disconnect");
        drop((second, rejected));
        let _ = handle.shutdown();
    }
}

/// Connection scale: 256 concurrent, mostly idle connections served by one
/// event-loop thread — every one gets its batch admitted, and the server's
/// thread count stays fixed (event loop + drainer), independent of the
/// connection count.
#[test]
fn many_mostly_idle_connections_on_one_event_thread() {
    let num_vertices = 1024;
    // Deep queues: all 256 batches must admit cleanly even if the drainer
    // lags the burst on a small machine.
    let builder = EngineBuilder::new(num_vertices).seed(9);
    let shards = (0..2)
        .map(|_| {
            pdmm::service::EngineService::with_queue_capacity(
                pdmm::engine::build(EngineKind::Parallel, &builder),
                512,
            )
        })
        .collect();
    let service = Arc::new(ShardedService::from_services(
        shards,
        Box::new(pdmm::sharding::HashPartitioner),
    ));
    let config = ServerConfig {
        io_model: IoModel::Reactor,
        event_threads: 1,
        policy: AdmissionPolicy {
            max_in_flight: 1024,
            ..AdmissionPolicy::default()
        },
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let mut clients = Vec::new();
    for _ in 0..256 {
        clients.push(connect(&handle));
    }
    // Every connection submits exactly one batch; the rest of the time it
    // idles.  Interleave the submissions so many are in flight at once.
    for (id, (stream, _)) in clients.iter_mut().enumerate() {
        stream
            .write_all(frame_batch(&pair_batch(id as u64, num_vertices as u32)).as_bytes())
            .unwrap();
    }
    for (id, (_, reader)) in clients.iter_mut().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = Response::parse(&line).unwrap();
        assert!(
            matches!(response, Response::Ok { updates: 1, .. }),
            "connection {id}: {response}"
        );
    }

    let stats = handle.stats();
    assert_eq!(stats.connections, 256);
    assert_eq!(stats.peak_connections, 256);
    assert_eq!(stats.admitted, 256);
    // One event-loop thread + one background drainer — the whole point.
    assert_eq!(stats.worker_threads, 2);

    drop(clients);
    let stats = handle.shutdown();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(service.snapshot().committed_batches(), 256);
}

/// The pipelining limit: with `max_pipeline = 1` and a manual drainer, a
/// client that writes three batches up front gets exactly one admission per
/// drain — the connection is paused (not read) between drains, so admission
/// is coupled to the commit rate.
#[test]
fn pipelining_limit_paces_admissions_to_drains() {
    let service = service(16, 1);
    let config = ServerConfig {
        io_model: IoModel::Reactor,
        fairness: FairnessPolicy {
            max_pipeline: 1,
            ..FairnessPolicy::default()
        },
        drain: DrainMode::Manual,
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let (mut stream, mut reader) = connect(&handle);

    let mut script = String::new();
    for id in 0..3u64 {
        script.push_str(&frame_batch(&pair_batch(id, 16)));
    }
    stream.write_all(script.as_bytes()).unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(matches!(Response::parse(&line), Some(Response::Ok { .. })));

    // The second batch is already in the server's buffers, but the window is
    // exhausted: no second response may arrive until a drain happens.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut byte = [0u8; 1];
    let starved = stream.read(&mut byte);
    assert!(
        matches!(&starved, Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)),
        "expected no response before the drain, got {starved:?}"
    );
    assert_eq!(handle.stats().admitted, 1);

    for expected in 2..=3u64 {
        let report = handle.drain_now();
        assert!(report.committed >= 1);
        let stats = wait_for_stats(&handle, |stats| stats.admitted >= expected);
        assert_eq!(stats.admitted, expected);
    }

    // All three responses are on the wire now.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(Response::parse(&line), Some(Response::Ok { .. })));
    }
    drop((stream, reader));
    let _ = handle.shutdown();
}

/// Fairness pin: while one firehose connection saturates the server with
/// pipelined batches, a trickle connection submitting one batch at a time
/// still sees bounded response latency — the per-wake budgets force
/// round-robin service instead of letting the firehose monopolize the loop.
#[test]
fn trickle_latency_stays_bounded_under_a_firehose() {
    let num_vertices = 4096;
    let service = service(num_vertices, 2);
    let config = ServerConfig {
        io_model: IoModel::Reactor,
        policy: AdmissionPolicy {
            max_in_flight: usize::MAX,
            ..AdmissionPolicy::default()
        },
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let firehose = {
        let addr = handle.local_addr();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let reader_stop = Arc::clone(&stop);
            let drain = std::thread::spawn(move || {
                let mut line = String::new();
                while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            });
            // Pipeline aggressively: many frames per write, never waiting.
            let mut id = 1u64 << 32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut burst = String::new();
                for _ in 0..64 {
                    burst.push_str(&frame_batch(&pair_batch(id, num_vertices as u32)));
                    id += 1;
                }
                if stream.write_all(burst.as_bytes()).is_err() {
                    break;
                }
            }
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = drain.join();
        })
    };

    // Let the firehose saturate first, then measure the trickle.
    std::thread::sleep(Duration::from_millis(100));
    let (mut stream, mut reader) = connect(&handle);
    let mut latencies = Vec::new();
    for id in 0..30u64 {
        let start = Instant::now();
        let response = submit(
            &mut stream,
            &mut reader,
            &pair_batch(id, num_vertices as u32),
        );
        assert!(
            !matches!(response, Response::Error { .. }),
            "trickle got a protocol error: {response}"
        );
        latencies.push(start.elapsed());
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    firehose.join().unwrap();

    latencies.sort();
    let p99 = latencies[latencies.len() - 1]; // max of 30 samples ≈ p99
    assert!(
        p99 < Duration::from_millis(500),
        "trickle starved under the firehose: max latency {p99:?} of {latencies:?}"
    );
    drop((stream, reader));
    let _ = handle.shutdown();
}

/// Garbage and truncation against the reactor with deliberately tiny budgets
/// (so the budget/backlog paths are exercised): the loop never panics, a
/// truncated batch never commits, and the server keeps serving afterwards.
#[test]
fn garbage_and_truncated_frames_never_panic_the_loop() {
    let service = service(64, 2);
    let config = ServerConfig {
        io_model: IoModel::Reactor,
        fairness: FairnessPolicy {
            read_budget_bytes: 64,
            batch_budget: 2,
            ..FairnessPolicy::default()
        },
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let mut rng = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for case in 0..24 {
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut garbage = Vec::new();
        for _ in 0..(next() % 400 + 20) {
            let byte = (next() % 256) as u8;
            garbage.push(if byte == 0 { b'\n' } else { byte });
        }
        stream.write_all(&garbage).unwrap();
        if case % 2 == 0 {
            // Truncation: die mid-frame without the terminating blank line.
            stream
                .write_all(b"\n\n+ 9999999 1 2") // resync, then truncated insert
                .unwrap();
            drop(stream);
        } else {
            // Resync, then prove the connection still works: the sentinel
            // batch must be admitted.
            stream.write_all(b"\n\n+ 424242 4 5\n\n").unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let ok = loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break false;
                }
                match Response::parse(&line) {
                    Some(Response::Ok { updates: 1, .. }) => break true,
                    Some(_) => {}
                    None => break false,
                }
            };
            assert!(ok, "case {case}: sentinel batch was not admitted");
            // Clean up the sentinel so the next case can reuse the id.
            let mut line = String::new();
            stream.write_all(b"- 424242\n\n").unwrap();
            reader.read_line(&mut line).unwrap();
            drop(stream);
        }
    }
    let stats = handle.shutdown();
    // The truncated inserts (edge 9999999) must never have committed.
    assert!(!service.snapshot().edge_ids().contains(&EdgeId(9_999_999)));
    assert!(stats.protocol_errors > 0, "garbage produced no ERRs?");
}
