//! Differential pins for the single-validation hot path.
//!
//! * [`run_batch_trusted`] ≡ the validating `apply_batch` on all five
//!   engines: same reports, same matching, same serialized state.
//! * The [`ValidatedBatch`] proof is mintable only through validation —
//!   `MatchingEngine::validate` refuses exactly what `apply_batch` refuses
//!   (construction *around* validation is a compile error, pinned by the
//!   `compile_fail` doctests on [`ValidatedBatch`]).
//! * The service's incrementally maintained snapshot equals a from-scratch
//!   ground-truth rebuild after every workload, across engines, snapshot
//!   throttles and the lossy drain — the pin that lets publish be O(delta).
//!
//! [`run_batch_trusted`]: pdmm::engine::run_batch_trusted
//! [`ValidatedBatch`]: pdmm::engine::ValidatedBatch

use pdmm::engine::{self, BatchError};
use pdmm::prelude::*;
use std::collections::HashMap;

const NUM_VERTICES: usize = 48;
const RANK: usize = 3;

fn builder(seed: u64) -> EngineBuilder {
    EngineBuilder::new(NUM_VERTICES).rank(RANK).seed(seed)
}

fn workload(seed: u64) -> Workload {
    pdmm::hypergraph::streams::random_churn(NUM_VERTICES, RANK, 20, 15, 6, 0.6, seed)
}

#[test]
fn trusted_path_matches_validating_path_on_all_engines() {
    for kind in EngineKind::ALL {
        for seed in [3_u64, 17, 92] {
            let workload = workload(seed);
            let mut validating = engine::build(kind, &builder(11));
            let mut trusted = engine::build(kind, &builder(11));
            for batch in &workload.batches {
                let expected = validating
                    .apply_batch(batch.updates())
                    .expect("workload batches are valid");
                let proof = trusted
                    .validate(batch.updates())
                    .expect("workload batches are valid");
                let got = trusted
                    .apply_batch_trusted(proof)
                    .expect("proven batches commit");
                assert_eq!(expected, got, "{kind:?} seed {seed}: reports diverge");
            }
            let mut a: Vec<EdgeId> = validating.matching().collect();
            let mut b: Vec<EdgeId> = trusted.matching().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?} seed {seed}: matchings diverge");
            assert_eq!(
                validating.save_state(),
                trusted.save_state(),
                "{kind:?} seed {seed}: serialized state diverges"
            );
        }
    }
}

#[test]
fn validate_refuses_exactly_what_apply_batch_refuses() {
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    let dirty: Vec<Vec<Update>> = vec![
        vec![pair(0, 0, 1), pair(0, 2, 3)],    // duplicate insert
        vec![Update::Delete(EdgeId(99))],      // unknown deletion
        vec![pair(1, 0, NUM_VERTICES as u32)], // vertex out of range
        vec![Update::Insert(HyperEdge::new(
            EdgeId(2),
            (0..=RANK as u32).map(VertexId).collect(),
        ))], // rank violation
    ];
    for kind in EngineKind::ALL {
        for updates in &dirty {
            let mut engine = engine::build(kind, &builder(5));
            let refused: BatchError = engine
                .apply_batch(updates)
                .expect_err("dirty batch must be refused");
            let minted = engine.validate(updates).map(|_| ()).expect_err("no proof");
            assert_eq!(refused, minted, "{kind:?}: the two paths disagree");
        }
    }
}

/// Ground truth for one service snapshot: replays the committed journal onto
/// a plain edge map and checks every published structure against it.
fn assert_snapshot_matches_ground_truth(service: &EngineService, kind: EngineKind) {
    let snapshot = service.snapshot();
    let committed =
        pdmm::hypergraph::io::batches_from_string(&service.journal()).expect("journal parses");
    let mut live: HashMap<EdgeId, Vec<VertexId>> = HashMap::new();
    for batch in &committed {
        for update in batch.iter() {
            match update {
                Update::Insert(edge) => {
                    live.insert(edge.id, edge.vertices().to_vec());
                }
                Update::Delete(id) => {
                    live.remove(id);
                }
            }
        }
    }
    let ids = snapshot.edge_ids();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "{kind:?}: snapshot edge ids must be sorted");
    let mut expected_vertices: Vec<VertexId> = Vec::new();
    for id in &ids {
        let endpoints = live
            .get(id)
            .unwrap_or_else(|| panic!("{kind:?}: matched edge {id:?} is not live"));
        for &v in endpoints {
            assert_eq!(
                snapshot.matched_edge_of(v),
                Some(*id),
                "{kind:?}: by-vertex entry diverges for {v:?}"
            );
            expected_vertices.push(v);
        }
    }
    expected_vertices.sort_unstable();
    expected_vertices.dedup();
    let published: Vec<VertexId> = snapshot.matched_vertices().collect();
    assert_eq!(
        published, expected_vertices,
        "{kind:?}: matched_vertices must be the sorted endpoint union"
    );
    assert_eq!(snapshot.size(), ids.len());
}

#[test]
fn incremental_snapshot_matches_from_scratch_rebuild() {
    for kind in EngineKind::ALL {
        for every in [1_u64, 3, 1000] {
            let workload = workload(29);
            let service =
                EngineService::new(engine::build(kind, &builder(13))).with_snapshot_every(every);
            for chunk in workload.batches.chunks(16) {
                for batch in chunk {
                    service.submit(batch.clone());
                }
                service.drain().expect("valid batches drain");
            }
            // A drain always publishes the committed frontier on exit, even
            // when the throttle lagged mid-stream.
            assert_eq!(
                service.snapshot().committed_batches(),
                workload.batches.len() as u64
            );
            assert_snapshot_matches_ground_truth(&service, kind);
        }
    }
}

#[test]
fn incremental_snapshot_survives_lossy_drains() {
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    for kind in EngineKind::ALL {
        let service = EngineService::new(engine::build(kind, &builder(23)));
        let clean = workload(31);
        for batch in &clean.batches {
            service.submit(batch.clone());
        }
        service.drain_lossy();
        // A dirty batch: the duplicate insert and unknown deletion are
        // skipped, the survivors commit, and the index must track exactly
        // the survivors.
        let (dirty, rejected) = UpdateBatch::new_lossy(vec![
            pair(9_000, 0, 1),
            pair(9_000, 2, 3),
            Update::Delete(EdgeId(8_888)),
        ]);
        assert_eq!(rejected.len(), 1, "duplicate insert rejected at sealing");
        service.submit(dirty);
        let reports = service.drain_lossy();
        assert!(reports.iter().any(|r| !r.rejected.is_empty()));
        assert_snapshot_matches_ground_truth(&service, kind);
    }
}

#[test]
fn recovered_service_publishes_the_same_snapshot() {
    let workload = workload(37);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder(19)));
    let mid = workload.batches.len() / 2;
    for batch in &workload.batches[..mid] {
        service.submit(batch.clone());
        service.drain().expect("valid batches drain");
    }
    let checkpoint = service.checkpoint().expect("drain-boundary checkpoint");
    for batch in &workload.batches[mid..] {
        service.submit(batch.clone());
        service.drain().expect("valid batches drain");
    }
    let recovered = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder(19)),
        &checkpoint,
        &service.journal(),
        Box::new(pdmm::service::MemoryJournal::new()),
    )
    .expect("recovery succeeds");
    let a = service.snapshot();
    let b = recovered.snapshot();
    assert_eq!(a.edge_ids(), b.edge_ids());
    assert_eq!(a.committed_batches(), b.committed_batches());
    assert_eq!(
        a.matched_vertices().collect::<Vec<_>>(),
        b.matched_vertices().collect::<Vec<_>>()
    );
    assert_snapshot_matches_ground_truth(&recovered, EngineKind::Parallel);
}
