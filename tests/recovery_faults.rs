//! Crash/fault-injection recovery suite: checkpointed durability under torn
//! writes, truncated tails and arbitrary kill points.
//!
//! The contract under test (see `pdmm::checkpoint`):
//!
//! * recovery from (checkpoint + journal tail) is **bit-identical** to a
//!   clean replay of the same committed history — same engine state blob,
//!   same snapshot, same journal — on all five engines, at 1 and 4 shards;
//! * a torn or truncated final journal block recovers to the last *complete*
//!   block: never a panic, never a resurrected uncommitted batch — not even
//!   when the tear lands exactly on a line boundary and the update lines all
//!   survive;
//! * a checkpoint from a differently-configured run (engine kind, vertex
//!   space, rank, shard count, format version) is rejected with a typed
//!   error, never silently restored;
//! * taking a checkpoint truncates the journal segments it makes redundant.

use pdmm::checkpoint::{CheckpointError, FaultSink};
use pdmm::engine;
use pdmm::hypergraph::io;
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::prelude::*;
use pdmm::service::{FileJournal, JournalSink, MemoryJournal};

fn serve_workload() -> Workload {
    streams::random_churn(100, 2, 160, 12, 30, 0.5, 41)
}

/// The workload's batches with empty ones dropped: empty batches commit but
/// leave no journal block, so block counts and committed counts only line up
/// batch-for-batch on a stream without them.
fn nonempty_batches(workload: &Workload) -> Vec<UpdateBatch> {
    workload
        .batches
        .iter()
        .filter(|b| !b.is_empty())
        .cloned()
        .collect()
}

fn builder_for(workload: &Workload, seed: u64) -> EngineBuilder {
    EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(seed)
}

fn mem() -> Box<dyn JournalSink> {
    Box::new(MemoryJournal::new())
}

/// Deterministic splitmix-style generator for kill points.
fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic post-recovery batches over fresh, never-used edge ids (the
/// serve workloads start ids at 0, so a second generated workload would
/// collide with edges still live from the first).
fn continuation_batches(num_vertices: usize, count: usize, rng: &mut u64) -> Vec<UpdateBatch> {
    (0..count)
        .map(|i| {
            let updates = (0..8u64)
                .map(|j| {
                    let a = (next_rand(rng) % num_vertices as u64) as u32;
                    let mut b = (next_rand(rng) % num_vertices as u64) as u32;
                    if b == a {
                        b = (b + 1) % num_vertices as u32;
                    }
                    Update::Insert(HyperEdge::pair(
                        EdgeId(1_000_000 + i as u64 * 8 + j),
                        VertexId(a),
                        VertexId(b),
                    ))
                })
                .collect();
            UpdateBatch::new(updates).unwrap()
        })
        .collect()
}

/// Bytes handed to `append_block` for the blocks of a journal text (what
/// `FaultSink` byte offsets count): each block's trimmed text plus its
/// trailing newline, separators excluded.
fn appended_bytes(journal: &str) -> u64 {
    io::journal_blocks(journal)
        .iter()
        .map(|b| b.len() as u64 + 1)
        .sum()
}

// ---------------------------------------------------------------------------
// Clean checkpoint + tail recovery, every engine
// ---------------------------------------------------------------------------

#[test]
fn recovery_from_checkpoint_plus_tail_is_bit_identical_on_every_engine() {
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let mid = batches.len() / 2;
    for kind in EngineKind::ALL {
        let builder = builder_for(&workload, 7);
        let service = EngineService::new(engine::build(kind, &builder));
        for batch in &batches[..mid] {
            service.submit(batch.clone());
            service.drain().unwrap();
        }
        let checkpoint = service.checkpoint().unwrap();
        for batch in &batches[mid..] {
            service.submit(batch.clone());
            service.drain().unwrap();
        }

        // "Crash": all that survives is the checkpoint and the journal.
        let survived = service.journal();
        let recovered =
            EngineService::recover(engine::build(kind, &builder), &checkpoint, &survived, mem())
                .unwrap();

        // Bit-identical to the service that never crashed: engine state blob,
        // snapshot, committed count, journal.
        assert_eq!(recovered.save_state(), service.save_state(), "{kind}");
        assert_eq!(
            recovered.snapshot().edge_ids(),
            service.snapshot().edge_ids(),
            "{kind}"
        );
        assert_eq!(
            recovered.snapshot().committed_batches(),
            batches.len() as u64,
            "{kind}"
        );
        assert_eq!(recovered.journal(), survived, "{kind}");

        // And it keeps serving identically: the same further batches produce
        // the same state on both.
        let mut cont_rng = 97u64;
        for batch in continuation_batches(workload.num_vertices, 6, &mut cont_rng) {
            recovered.submit(batch.clone());
            service.submit(batch);
        }
        recovered.drain().unwrap();
        service.drain().unwrap();
        assert_eq!(recovered.save_state(), service.save_state(), "{kind}");
        assert_eq!(
            recovered.snapshot().edge_ids(),
            service.snapshot().edge_ids(),
            "{kind}"
        );
    }
}

// ---------------------------------------------------------------------------
// Random kill points, every engine
// ---------------------------------------------------------------------------

#[test]
fn random_kill_points_recover_exactly_the_committed_prefix() {
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let mid = batches.len() / 3;
    let mut rng = 0x9e3779b97f4a7c15u64;
    for kind in EngineKind::ALL {
        let builder = builder_for(&workload, 23);

        // Scout run: learn the journal's byte layout so kill points can be
        // placed after the checkpoint (before it, nothing is lost).
        let scout = EngineService::new(engine::build(kind, &builder));
        let mut bytes_at_mid = 0u64;
        for (i, batch) in batches.iter().enumerate() {
            scout.submit(batch.clone());
            scout.drain().unwrap();
            if i + 1 == mid {
                bytes_at_mid = appended_bytes(&scout.journal());
            }
        }
        let total_bytes = appended_bytes(&scout.journal());
        assert!(total_bytes > bytes_at_mid + 1);

        for _ in 0..4 {
            // A kill point strictly inside the post-checkpoint tail, and at
            // least two bytes short of the end — a cut at `total - 1` would
            // lose only the final newline, leaving the last trailer intact
            // (a complete block, legitimately recoverable).
            let kill = bytes_at_mid + 1 + next_rand(&mut rng) % (total_bytes - bytes_at_mid - 2);
            let service = EngineService::new(engine::build(kind, &builder))
                .with_journal(Box::new(FaultSink::torn_at_byte(mem(), kill)));
            for batch in &batches[..mid] {
                service.submit(batch.clone());
                service.drain().unwrap();
            }
            let checkpoint = service.checkpoint().unwrap();
            for batch in &batches[mid..] {
                service.submit(batch.clone());
                service.drain().unwrap();
            }

            let survived = service.journal();
            let recovered = EngineService::recover(
                engine::build(kind, &builder),
                &checkpoint,
                &survived,
                mem(),
            )
            .unwrap_or_else(|e| panic!("{kind} kill at byte {kill}: {e}"));

            // The kill fired inside the tail, so some committed batches never
            // reached the journal — and exactly the journaled prefix is back.
            let committed = recovered.snapshot().committed_batches();
            assert!(committed >= mid as u64, "{kind} kill at byte {kill}");
            assert!(
                committed < batches.len() as u64,
                "{kind} kill at byte {kill}"
            );
            assert_eq!(
                io::journal_blocks(&recovered.journal()).len() as u64,
                committed,
                "{kind} kill at byte {kill}: no uncommitted batch may be resurrected"
            );

            // Bit-identical to the clean twin that applied that exact prefix.
            let twin = EngineService::new(engine::build(kind, &builder));
            for batch in &batches[..committed as usize] {
                twin.submit(batch.clone());
                twin.drain().unwrap();
            }
            assert_eq!(
                recovered.save_state(),
                twin.save_state(),
                "{kind} kill at byte {kill}"
            );
            assert_eq!(
                recovered.snapshot().edge_ids(),
                twin.snapshot().edge_ids(),
                "{kind} kill at byte {kill}"
            );
            assert_eq!(
                recovered.journal(),
                twin.journal(),
                "{kind} kill at byte {kill}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Torn-tail semantics, surgically
// ---------------------------------------------------------------------------

#[test]
fn a_torn_tail_is_dropped_even_when_it_tears_on_a_line_boundary() {
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let builder = builder_for(&workload, 5);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    service.submit(batches[0].clone());
    service.drain().unwrap();
    let checkpoint = service.checkpoint().unwrap();
    service.submit(batches[1].clone());
    service.drain().unwrap();
    let journal = service.journal();

    let twin_after_one = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    twin_after_one.submit(batches[0].clone());
    twin_after_one.drain().unwrap();

    // Tear the final block around its trailer line.  The nastiest case is the
    // exact line boundary where every update line of the uncommitted batch
    // survives intact and only the trailer is missing: the block parses, and
    // recovery must *still* refuse to resurrect it.  (A cut that keeps the
    // whole trailer text and loses only the final newline is the one torn
    // shape that IS complete — the batch fully journaled — so it recovers.)
    let trailer = "# commit";
    let tail_trailer = journal.rfind(trailer).unwrap();
    for (cut, expect_committed) in [
        (tail_trailer, 1),                   // line boundary: updates whole
        (tail_trailer + 3, 1),               // mid-trailer
        (tail_trailer.saturating_sub(4), 1), // mid-update-line
        (journal.len() - 1, 2),              // only the final newline lost
    ] {
        let torn = &journal[..cut];
        let recovered = EngineService::recover(
            engine::build(EngineKind::Parallel, &builder),
            &checkpoint,
            torn,
            mem(),
        )
        .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(
            recovered.snapshot().committed_batches(),
            expect_committed,
            "cut at {cut}: exactly the complete blocks come back"
        );
        let expected_twin = if expect_committed == 1 {
            &twin_after_one
        } else {
            &service
        };
        assert_eq!(
            recovered.save_state(),
            expected_twin.save_state(),
            "cut at {cut}"
        );
    }

    // A hole *before* a complete block is corruption, not a crash artifact.
    let first_trailer = journal.find(trailer).unwrap();
    let holed = format!(
        "{}{}",
        &journal[..first_trailer],
        &journal[first_trailer + trailer.len() + 1..]
    );
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &checkpoint,
        &holed,
        mem(),
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");

    // A journal shorter than the checkpoint's coverage is corruption too.
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &checkpoint,
        "",
        mem(),
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
}

#[test]
fn short_writes_leave_a_hole_recovery_refuses() {
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let builder = builder_for(&workload, 31);
    // The second append is cut short while the sink keeps running: block 2 is
    // damaged, block 3 is complete — a mid-journal hole, not a torn tail.
    // The cut lands on a line boundary (first update line kept, trailer and
    // the rest lost) so the hole keeps its own block framing; a sub-line cut
    // would merge into the following block, which a checksum-less text format
    // cannot distinguish from data.
    let keep = io::batches_to_string(std::slice::from_ref(&batches[1]))
        .lines()
        .next()
        .unwrap()
        .len()
        + 1;
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder))
        .with_journal(Box::new(FaultSink::short_write(mem(), 2, keep)));
    let checkpoint = {
        service.submit(batches[0].clone());
        service.drain().unwrap();
        service.checkpoint().unwrap()
    };
    for batch in &batches[1..4] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &checkpoint,
        &service.journal(),
        mem(),
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

#[test]
fn a_checkpoint_from_another_configuration_is_rejected_with_a_typed_error() {
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let builder = builder_for(&workload, 11);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    service.submit(batches[0].clone());
    service.drain().unwrap();
    let checkpoint = service.checkpoint().unwrap();
    let journal = service.journal();

    // Wrong vertex-space size.
    let small = EngineBuilder::new(workload.num_vertices - 1)
        .rank(workload.rank.max(2))
        .seed(11);
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &small),
        &checkpoint,
        &journal,
        mem(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Fingerprint {
                field: "vertices",
                ..
            }
        ),
        "{err}"
    );

    // Wrong engine kind.
    let err = EngineService::recover(
        engine::build(EngineKind::NaiveSequential, &builder),
        &checkpoint,
        &journal,
        mem(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Fingerprint {
                field: "engine",
                ..
            }
        ),
        "{err}"
    );

    // Wrong rank bound.
    let wide = EngineBuilder::new(workload.num_vertices).rank(7).seed(11);
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &wide),
        &checkpoint,
        &journal,
        mem(),
    )
    .unwrap_err();
    assert!(
        matches!(err, CheckpointError::Fingerprint { field: "rank", .. }),
        "{err}"
    );

    // The seed is *not* fingerprinted: the RNG position is restored wholesale
    // from the engine state, so a differently-seeded recovering engine lands
    // on the same state — and keeps evolving identically.
    let reseeded = builder_for(&workload, 999);
    let recovered = EngineService::recover(
        engine::build(EngineKind::Parallel, &reseeded),
        &checkpoint,
        &journal,
        mem(),
    )
    .unwrap();
    assert_eq!(recovered.save_state(), service.save_state());

    // An unknown version line is typed, not a parse panic.
    let tampered = checkpoint.replacen("pdmm-checkpoint v1", "pdmm-checkpoint v2", 1);
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &tampered,
        &journal,
        mem(),
    )
    .unwrap_err();
    assert!(matches!(err, CheckpointError::Version { .. }), "{err}");

    // A sharded checkpoint does not recover into a bare service, and a
    // sharded recover demands the matching shard count.
    let sharded = ShardedService::new(
        (0..2)
            .map(|_| engine::build(EngineKind::Parallel, &builder))
            .collect(),
    );
    sharded.submit(batches[0].clone());
    sharded.drain().unwrap();
    let sharded_checkpoint = sharded.checkpoint().unwrap();
    let err = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &sharded_checkpoint,
        &journal,
        mem(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Fingerprint {
                field: "shards",
                ..
            }
        ),
        "{err}"
    );
    let err = ShardedService::recover(
        (0..3)
            .map(|_| engine::build(EngineKind::Parallel, &builder))
            .collect(),
        Box::new(pdmm::sharding::HashPartitioner),
        &sharded_checkpoint,
        &[String::new(), String::new(), String::new()],
        vec![mem(), mem(), mem()],
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::Fingerprint {
                field: "shards",
                ..
            }
        ),
        "{err}"
    );
}

// ---------------------------------------------------------------------------
// Sharded recovery, every engine, 1 and 4 shards
// ---------------------------------------------------------------------------

#[test]
fn sharded_torn_kill_recovers_bit_identical_to_clean_replay_at_1_and_4_shards() {
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let mid = batches.len() / 2;
    let mut rng = 0x0123456789abcdefu64;
    for kind in EngineKind::ALL {
        for shards in [1usize, 4] {
            let builder = builder_for(&workload, 13);
            let engines =
                || -> Vec<_> { (0..shards).map(|_| engine::build(kind, &builder)).collect() };

            // Scout run: learn the victim shard's journal byte layout.
            let scout = ShardedService::new(engines());
            let mut victim_bytes_at_mid = 0u64;
            for (i, batch) in batches.iter().enumerate() {
                scout.submit(batch.clone());
                scout.drain().unwrap();
                if i + 1 == mid {
                    victim_bytes_at_mid = appended_bytes(&scout.shard_journal(0));
                }
            }
            let victim_total = appended_bytes(&scout.shard_journal(0));
            assert!(victim_total > victim_bytes_at_mid + 1, "{kind}/{shards}");

            // Real run: shard 0 gets the torn sink, the crash point strictly
            // inside its post-checkpoint tail.
            let kill = victim_bytes_at_mid
                + 1
                + next_rand(&mut rng) % (victim_total - victim_bytes_at_mid - 1);
            let services: Vec<EngineService> = engines()
                .into_iter()
                .enumerate()
                .map(|(k, e)| {
                    let service = EngineService::new(e);
                    if k == 0 {
                        service.with_journal(Box::new(FaultSink::torn_at_byte(mem(), kill)))
                    } else {
                        service
                    }
                })
                .collect();
            let service =
                ShardedService::from_services(services, Box::new(pdmm::sharding::HashPartitioner));
            for batch in &batches[..mid] {
                service.submit(batch.clone());
                service.drain().unwrap();
            }
            let checkpoint = service.checkpoint().unwrap();
            for batch in &batches[mid..] {
                service.submit(batch.clone());
                service.drain().unwrap();
            }

            // "Crash": salvage every shard's surviving journal, recover.
            let journals: Vec<String> = (0..shards).map(|k| service.shard_journal(k)).collect();
            let sinks = (0..shards).map(|_| mem()).collect();
            let recovered = ShardedService::recover(
                engines(),
                Box::new(pdmm::sharding::HashPartitioner),
                &checkpoint,
                &journals,
                sinks,
            )
            .unwrap_or_else(|e| panic!("{kind}/{shards} kill at byte {kill}: {e}"));

            // The victim shard lost its tail; the journaled prefix is back
            // and nothing uncommitted was resurrected.
            let victim_committed = recovered.shard_snapshot(0).committed_batches();
            assert_eq!(
                io::journal_blocks(&recovered.shard_journal(0)).len() as u64,
                victim_committed,
                "{kind}/{shards} kill at byte {kill}"
            );
            assert!(
                victim_committed < service.shard_snapshot(0).committed_batches(),
                "{kind}/{shards} kill at byte {kill}: the kill point must lose data"
            );

            // Bit-identical to a clean replay of the recovered history: every
            // shard's engine state blob, journal, and the merged snapshot.
            let twin = ShardedService::replay(engines(), &recovered.journal())
                .unwrap_or_else(|e| panic!("{kind}/{shards} kill at byte {kill}: {e}"));
            for k in 0..shards {
                assert_eq!(
                    recovered.shard_state(k),
                    twin.shard_state(k),
                    "{kind}/{shards} shard {k} kill at byte {kill}"
                );
                assert_eq!(
                    recovered.shard_journal(k),
                    twin.shard_journal(k),
                    "{kind}/{shards} shard {k} kill at byte {kill}"
                );
            }
            assert_eq!(
                recovered.snapshot().edge_ids(),
                twin.snapshot().edge_ids(),
                "{kind}/{shards} kill at byte {kill}"
            );

            // The rebuilt router routes further batches exactly like the
            // twin's (replay-built) router: continued service stays identical.
            let mut cont_rng = 71u64;
            for batch in continuation_batches(workload.num_vertices, 5, &mut cont_rng) {
                recovered.submit(batch.clone());
                twin.submit(batch);
                recovered.drain().unwrap();
                twin.drain().unwrap();
            }
            for k in 0..shards {
                assert_eq!(
                    recovered.shard_state(k),
                    twin.shard_state(k),
                    "{kind}/{shards} shard {k} post-recovery serving"
                );
            }
            assert_eq!(
                recovered.snapshot().edge_ids(),
                twin.snapshot().edge_ids(),
                "{kind}/{shards} post-recovery serving"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// File journals: truncation on checkpoint, salvage, crash-again
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_truncates_rotated_segments_and_salvage_recovers_from_disk() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("recovery_faults_truncate.log");
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let mid = batches.len() / 2;
    let builder = builder_for(&workload, 3);
    let segment = |seq: usize| {
        let mut name = path.clone().into_os_string();
        name.push(format!(".{seq}"));
        std::path::PathBuf::from(name)
    };

    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder)).with_journal(
        Box::new(FileJournal::create(&path).unwrap().with_rotate_at(192)),
    );
    for batch in &batches[..mid] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    assert!(
        segment(1).exists(),
        "the tiny rotation threshold must have rotated by now"
    );

    // Taking the checkpoint deletes every rotated segment: the checkpoint
    // covers them, so keeping them would only re-grow recovery back to
    // O(history).
    let checkpoint = service.checkpoint().unwrap();
    assert!(
        !segment(1).exists(),
        "journal segments older than the checkpoint must be truncated"
    );

    for batch in &batches[mid..] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    let full_state = service.save_state();
    let full_edges = service.snapshot().edge_ids();
    drop(service);

    // Post-crash: salvage reads segments + active file without touching them;
    // the recovered service journals into a fresh file.
    let salvaged = FileJournal::salvage(&path).unwrap();
    let next_path = dir.join("recovery_faults_truncate_next.log");
    let recovered = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &checkpoint,
        &salvaged,
        Box::new(FileJournal::create(&next_path).unwrap()),
    )
    .unwrap();
    assert_eq!(recovered.save_state(), full_state);
    assert_eq!(recovered.snapshot().edge_ids(), full_edges);
    assert_eq!(
        recovered.snapshot().committed_batches(),
        batches.len() as u64
    );

    // Era model: the recovered service can re-checkpoint and survive a second
    // crash before *or* after it, from the re-appended journal alone.
    let second_checkpoint = recovered.checkpoint().unwrap();
    let mut cont_rng = 57u64;
    let more = continuation_batches(workload.num_vertices, 4, &mut cont_rng);
    for batch in &more {
        recovered.submit(batch.clone());
        recovered.drain().unwrap();
    }
    let twice = EngineService::recover(
        engine::build(EngineKind::Parallel, &builder),
        &second_checkpoint,
        &FileJournal::salvage(&next_path).unwrap(),
        mem(),
    )
    .unwrap();
    assert_eq!(twice.save_state(), recovered.save_state());
    assert_eq!(
        twice.snapshot().committed_batches(),
        (batches.len() + more.len()) as u64
    );
}

#[test]
fn checkpoint_files_roundtrip_through_disk() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("recovery_faults_checkpoint_file.ckpt");
    let workload = serve_workload();
    let batches = nonempty_batches(&workload);
    let builder = builder_for(&workload, 19);
    let service = EngineService::new(engine::build(EngineKind::RandomReplace, &builder));
    for batch in &batches[..6] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    let checkpoint = service.checkpoint().unwrap();
    pdmm::checkpoint::store_checkpoint(&path, &checkpoint).unwrap();
    let loaded = pdmm::checkpoint::load_checkpoint(&path).unwrap();
    assert_eq!(loaded, checkpoint);
    let doc = pdmm::checkpoint::Checkpoint::parse(&loaded).unwrap();
    assert_eq!(doc.engine(), "random-replace-sequential");
    assert_eq!(doc.num_vertices(), workload.num_vertices);
    assert_eq!(doc.num_shards(), 1);
    assert_eq!(doc.committed_batches(), 6);
    let recovered = EngineService::recover(
        engine::build(EngineKind::RandomReplace, &builder),
        &loaded,
        &service.journal(),
        mem(),
    )
    .unwrap();
    assert_eq!(recovered.save_state(), service.save_state());
}
