//! End-to-end tests of the TCP front-end: a live loopback server on every
//! engine — under *both* I/O models — bit-identical to an offline
//! [`ShardedService`] fed the same batches, plus the backpressure escalation
//! (`RETRY` → `SHED`) pinned at a tiny queue capacity.

use pdmm::net::{frame_batch, serve, AdmissionPolicy, DrainMode, IoModel, Response, ServerConfig};
use pdmm::prelude::*;
use pdmm::service::EngineService;
use pdmm::sharding::HashPartitioner;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn engines(
    kind: EngineKind,
    shards: usize,
    num_vertices: usize,
) -> Vec<Box<dyn MatchingEngine + Send>> {
    let builder = EngineBuilder::new(num_vertices).seed(7);
    (0..shards)
        .map(|_| pdmm::engine::build(kind, &builder))
        .collect()
}

/// A blocking line-oriented protocol client: send one framed batch, read one
/// response line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { reader, writer }
    }

    fn send_raw(&mut self, text: &str) {
        self.writer.write_all(text.as_bytes()).unwrap();
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        Response::parse(&line).unwrap_or_else(|| panic!("unparseable response: {line:?}"))
    }

    fn submit(&mut self, batch: &UpdateBatch) -> Response {
        self.send_raw(&frame_batch(batch));
        self.read_response()
    }
}

/// Every engine kind, under *both* I/O models: drive a skewed-churn workload
/// over a real socket into a 2-shard server, and assert the served snapshot
/// is bit-identical to an offline `ShardedService` (same engines, same
/// partitioner) fed the same batches directly — which pins
/// reactor ≡ threaded ≡ offline transitively.
#[test]
fn served_snapshot_matches_offline_sharded_service_on_every_engine() {
    let workload = pdmm::hypergraph::streams::skewed_churn(96, 3, 60, 12, 16, 0.6, 2.0, 11);
    for kind in EngineKind::ALL {
        let offline = ShardedService::new(engines(kind, 2, workload.num_vertices));
        for batch in &workload.batches {
            offline.submit(batch.clone());
        }
        let _ = offline.drain_lossy();
        let twin = offline.snapshot();

        for io_model in [IoModel::Reactor, IoModel::Threaded] {
            let live = Arc::new(ShardedService::new(engines(kind, 2, workload.num_vertices)));
            let config = ServerConfig {
                io_model,
                ..ServerConfig::default()
            };
            let handle = serve(Arc::clone(&live), "127.0.0.1:0", config).unwrap();

            let mut client = Client::connect(handle.local_addr());
            for batch in &workload.batches {
                let response = client.submit(batch);
                match response {
                    Response::Ok { updates, .. } => {
                        assert_eq!(updates, batch.len(), "{kind:?}/{io_model:?}");
                    }
                    other => panic!(
                        "{kind:?}/{io_model:?}: expected OK under default policy, got {other}"
                    ),
                }
            }
            drop(client);
            let stats = handle.shutdown(); // joins handlers, drains everything admitted
            assert_eq!(
                stats.admitted,
                workload.batches.len() as u64,
                "{kind:?}/{io_model:?}"
            );
            assert_eq!(stats.protocol_errors, 0, "{kind:?}/{io_model:?}");

            let served = live.snapshot();
            assert_eq!(served.edge_ids(), twin.edge_ids(), "{kind:?}/{io_model:?}");
            assert_eq!(served.size(), twin.size(), "{kind:?}/{io_model:?}");
            assert_eq!(
                served.committed_batches(),
                twin.committed_batches(),
                "{kind:?}/{io_model:?}"
            );
            // The journals replay both to the same state, so they must agree
            // shard by shard.
            for shard in 0..2 {
                assert_eq!(
                    live.shard_journal(shard),
                    offline.shard_journal(shard),
                    "{kind:?}/{io_model:?}"
                );
            }
        }
    }
}

/// The RETRY → SHED escalation at queue capacity 1, with a manual drainer so
/// queue depths are deterministic: one admission fills the queue, the next
/// `shed_after` submissions earn growing RETRY hints, everything after that
/// is SHED until a drain frees the queue again.
#[test]
fn backpressure_escalates_retry_then_shed_and_recovers() {
    for io_model in [IoModel::Reactor, IoModel::Threaded] {
        backpressure_escalation_under(io_model);
    }
}

fn backpressure_escalation_under(io_model: IoModel) {
    let num_vertices = 32;
    let services = vec![EngineService::with_queue_capacity(
        pdmm::engine::build(
            EngineKind::Parallel,
            &EngineBuilder::new(num_vertices).seed(3),
        ),
        1,
    )];
    let service = Arc::new(ShardedService::from_services(
        services,
        Box::new(HashPartitioner),
    ));
    let policy = AdmissionPolicy {
        retry_after_ms: 2,
        shed_after: 3,
        ..AdmissionPolicy::default()
    };
    let config = ServerConfig {
        policy,
        io_model,
        drain: DrainMode::Manual,
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(handle.local_addr());

    let batch = |id: u64| {
        UpdateBatch::new(vec![Update::Insert(HyperEdge::pair(
            EdgeId(id),
            VertexId((2 * id) as u32 % 32),
            VertexId((2 * id + 1) as u32 % 32),
        ))])
        .unwrap()
    };

    assert!(matches!(client.submit(&batch(0)), Response::Ok { .. }));
    // Queue (capacity 1) is now full; nobody drains.
    assert_eq!(client.submit(&batch(1)), Response::Retry { after_ms: 2 });
    assert_eq!(client.submit(&batch(2)), Response::Retry { after_ms: 4 });
    assert_eq!(client.submit(&batch(3)), Response::Retry { after_ms: 6 });
    assert_eq!(client.submit(&batch(4)), Response::Shed);
    assert_eq!(client.submit(&batch(5)), Response::Shed);

    let report = handle.drain_now();
    assert_eq!(report.committed, 1);

    // The queue has room again: admission recovers and the escalation resets.
    assert!(matches!(client.submit(&batch(6)), Response::Ok { .. }));
    assert_eq!(client.submit(&batch(7)), Response::Retry { after_ms: 2 });

    drop(client);
    let stats = handle.shutdown();
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.retried, 4);
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.connections, 1);
    // Shutdown flushed the second admitted batch; refused batches are gone.
    let snapshot = service.snapshot();
    assert_eq!(snapshot.committed_batches(), 2);
    assert_eq!(snapshot.edge_ids(), vec![EdgeId(0), EdgeId(6)]);
}

/// Refused batches are dropped server-side: the served state contains exactly
/// the admitted batches, and replaying the journal offline reproduces it
/// bit-identically (the acceptance-criteria scenario, in miniature).
#[test]
fn shed_load_leaves_a_replayable_consistent_history() {
    let num_vertices = 64;
    let engine = || {
        pdmm::engine::build(
            EngineKind::Parallel,
            &EngineBuilder::new(num_vertices).seed(5),
        )
    };
    let service = Arc::new(ShardedService::from_services(
        vec![EngineService::with_queue_capacity(engine(), 2)],
        Box::new(HashPartitioner),
    ));
    let config = ServerConfig {
        drain: DrainMode::Manual,
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(handle.local_addr());

    let workload = pdmm::hypergraph::streams::random_churn(num_vertices, 2, 40, 24, 8, 0.6, 17);
    let mut accepted = 0u64;
    let mut refused = 0u64;
    for (i, batch) in workload.batches.iter().enumerate() {
        match client.submit(batch) {
            Response::Ok { .. } => accepted += 1,
            r if r.is_backpressure() => refused += 1,
            other => panic!("unexpected response {other}"),
        }
        // Drain every few batches so the run interleaves admission and
        // refusal instead of wedging at capacity 2 forever.
        if i % 5 == 4 {
            handle.drain_now();
        }
    }
    drop(client);
    let stats = handle.shutdown();
    assert_eq!(stats.admitted, accepted);
    assert_eq!(stats.retried + stats.shed, refused);
    assert!(refused > 0, "capacity 2 without a drainer must refuse work");
    assert!(accepted > 0);

    // Offline replay of the journal reproduces the served state exactly,
    // even though the accepted stream is lossy (deletions may reference shed
    // inserts — the lossy drain rejected those as typed errors, and the
    // journal records only what committed).
    let replayed = ShardedService::replay_with(
        vec![engine()],
        Box::new(HashPartitioner),
        &service.journal(),
    )
    .unwrap();
    assert_eq!(
        replayed.snapshot().edge_ids(),
        service.snapshot().edge_ids()
    );
    assert_eq!(
        replayed.snapshot().committed_batches(),
        service.snapshot().committed_batches()
    );
}
