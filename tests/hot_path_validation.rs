//! Pins the serve path's **single-validation** guarantee with the
//! [`validation_checks`] counter hook: from submission to commit, the service
//! runs the [`BatchLedger`] legality check exactly once per update.
//!
//! The counter is process-global and `cargo test` runs the tests of one
//! binary on parallel threads, so *everything* that asserts counter deltas
//! lives in this one `#[test]` function, and this file deliberately contains
//! no other tests — integration-test binaries themselves run sequentially.
//!
//! [`validation_checks`]: pdmm::engine::validation_checks
//! [`BatchLedger`]: pdmm::engine::BatchLedger

use pdmm::engine::{self, validation_checks, BatchSession};
use pdmm::prelude::*;

const NUM_VERTICES: usize = 64;
const RANK: usize = 3;

fn workload(seed: u64) -> Workload {
    pdmm::hypergraph::streams::random_churn(NUM_VERTICES, RANK, 24, 12, 8, 0.6, seed)
}

#[test]
fn serve_path_validates_each_update_exactly_once() {
    let workload = workload(41);
    let total_updates: u64 = workload.total_updates() as u64;

    // Tier 1 — batch construction is the context-free check: one ledger
    // check per update, paid by the producer, not the serve path.  The
    // workload generator already constructed these batches, so re-sealing
    // the same updates measures construction in isolation.
    let before = validation_checks();
    let rebuilt: Vec<UpdateBatch> = workload
        .batches
        .iter()
        .map(|b| UpdateBatch::new(b.updates().to_vec()).expect("workload batches are valid"))
        .collect();
    assert_eq!(
        validation_checks() - before,
        total_updates,
        "UpdateBatch::new checks each update exactly once"
    );

    // Tier 2 — the serve path: submit + drain on the parallel engine.  The
    // drain mints one engine-context proof per batch (one ledger check per
    // update) and discharges it on the trusted kernel path, which must not
    // re-check anything.
    let builder = EngineBuilder::new(NUM_VERTICES).rank(RANK).seed(7);
    let service = EngineService::new(engine::build(EngineKind::Parallel, &builder));
    let before = validation_checks();
    for chunk in rebuilt.chunks(16) {
        for batch in chunk {
            service.submit(batch.clone());
        }
        service.drain().expect("valid batches drain");
    }
    assert_eq!(
        validation_checks() - before,
        total_updates,
        "submit + drain runs exactly one legality check per update"
    );
    assert_eq!(
        service.snapshot().committed_batches(),
        workload.batches.len() as u64
    );

    // The legacy triple-checking ingest shape (construct + stage + validating
    // apply) pays three checks per update — the before/after the refactor
    // closes.  Pinned here so a regression in either direction is loud.
    let mut engine = engine::build(EngineKind::Parallel, &builder);
    let before = validation_checks();
    for batch in &workload.batches {
        let reconstructed =
            UpdateBatch::new(batch.updates().to_vec()).expect("workload batches are valid");
        let mut session = BatchSession::new(engine.as_mut());
        session
            .stage_all(reconstructed.iter().cloned())
            .expect("valid batches stage");
        session.commit().expect("staged batches commit");
    }
    let legacy_checks = validation_checks() - before;
    // Staging checks per update; construction checks per update; commit
    // discharges the staged proof without a third pass (debug builds spend
    // one extra whole-batch audit inside commit's debug_assert).
    let expected_floor = 2 * total_updates;
    assert!(
        legacy_checks >= expected_floor,
        "legacy ingest re-checks: {legacy_checks} < {expected_floor}"
    );
}
