//! Integration stress tests: the parallel dynamic algorithm must keep a valid,
//! maximal matching and every structural invariant of §3.2 through long adversarial
//! update streams of every flavour the workload generators produce.

use pdmm::hypergraph::generators;
use pdmm::hypergraph::matching::verify_maximality;
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::prelude::*;

/// Runs a workload through the algorithm, mirroring it into a ground-truth graph
/// and checking maximality + invariants after every batch.
fn run_and_verify(workload: &Workload, config: Config) -> ParallelDynamicMatching {
    assert!(streams::validate_workload(workload), "malformed workload");
    let mut matcher = ParallelDynamicMatching::new(workload.num_vertices, config);
    let mut truth = DynamicHypergraph::new(workload.num_vertices);
    for (i, batch) in workload.batches.iter().enumerate() {
        truth.apply_batch(batch);
        matcher.apply_batch(batch).unwrap();
        let ids = matcher.matching_ids();
        assert_eq!(
            verify_maximality(&truth, &ids),
            Ok(()),
            "maximality broken after batch {i} of {}",
            workload.name
        );
        matcher.verify_invariants().unwrap_or_else(|e| {
            panic!("invariant broken after batch {i} of {}: {e}", workload.name)
        });
    }
    matcher
}

#[test]
fn insert_only_stream_stays_maximal() {
    let edges = generators::gnm_graph(300, 1_500, 1, 0);
    let w = streams::insert_only(300, edges, 100);
    let matcher = run_and_verify(&w, Config::for_graphs(10));
    assert!(matcher.matching_size() > 0);
    assert_eq!(matcher.metrics().deletions, 0);
}

#[test]
fn sliding_window_stream_stays_maximal() {
    let edges = generators::gnm_graph(200, 1_000, 2, 0);
    let w = streams::sliding_window(200, edges, 50, 6);
    let matcher = run_and_verify(&w, Config::for_graphs(11));
    assert_eq!(matcher.metrics().insertions, 1_000);
    assert_eq!(matcher.metrics().deletions, 1_000);
}

#[test]
fn random_churn_stream_stays_maximal() {
    let w = streams::random_churn(250, 2, 500, 25, 80, 0.5, 3);
    let matcher = run_and_verify(&w, Config::for_graphs(12));
    assert!(
        matcher.metrics().matched_deletions > 0,
        "churn should hit matched edges"
    );
}

#[test]
fn deletion_heavy_teardown_stays_maximal_and_empties() {
    let edges = generators::gnm_graph(150, 900, 4, 0);
    let w = streams::insert_then_teardown(150, edges, 60, 5);
    let matcher = run_and_verify(&w, Config::for_graphs(13));
    assert_eq!(matcher.matching_size(), 0, "everything was deleted");
    assert_eq!(matcher.num_temp_deleted(), 0);
}

#[test]
fn hub_churn_exercises_the_leveling_scheme() {
    let w = streams::hub_churn(400, 3, 30, 120, 7);
    let matcher = run_and_verify(&w, Config::for_graphs(14));
    // Hubs accumulate hundreds of incident edges, so the rising mechanism must
    // have created epochs above level 0 at some point.
    let created_above_zero: u64 = matcher
        .epoch_metrics()
        .per_level
        .iter()
        .skip(1)
        .map(|l| l.epochs_created)
        .sum();
    assert!(
        created_above_zero > 0,
        "hub churn should create epochs above level 0 (per level: {:?})",
        matcher
            .epoch_metrics()
            .per_level
            .iter()
            .map(|l| l.epochs_created)
            .collect::<Vec<_>>()
    );
}

#[test]
fn power_law_graph_teardown_stays_maximal() {
    let edges = generators::chung_lu_graph(300, 1_200, 2.3, 9, 0);
    let w = streams::insert_then_teardown(300, edges, 75, 11);
    run_and_verify(&w, Config::for_graphs(15));
}

#[test]
fn settle_after_insert_ablation_stays_maximal() {
    let w = streams::random_churn(150, 2, 300, 15, 60, 0.6, 21);
    run_and_verify(&w, Config::for_graphs(16).with_settle_after_insert());
}

#[test]
fn sequential_settle_ablation_stays_maximal() {
    let w = streams::hub_churn(300, 3, 20, 100, 23);
    run_and_verify(&w, Config::for_graphs(17).with_sequential_settle());
}

#[test]
fn rebuilds_preserve_correctness_over_long_streams() {
    // A tiny initial capacity forces repeated N-doubling rebuilds.
    let mut config = Config::for_graphs(18);
    config.initial_update_capacity = 0;
    let w = streams::random_churn(64, 2, 100, 30, 40, 0.5, 31);
    let matcher = run_and_verify(&w, config);
    assert!(matcher.metrics().rebuilds >= 1);
}

#[test]
fn single_update_batches_match_sequential_processing() {
    // Batch size 1 degenerates to the sequential dynamic algorithm; everything must
    // still hold, and the depth per batch must stay small.
    let w = streams::random_churn(80, 2, 150, 40, 1, 0.5, 37);
    let matcher = run_and_verify(&w, Config::for_graphs(19));
    assert_eq!(matcher.metrics().batches as usize, w.batches.len());
}

#[test]
fn temp_deleted_edges_are_restored_when_their_epoch_dies() {
    // Star-heavy workload: settle parks many edges in D(·); deleting the matched
    // hub edge must bring them back (they are needed for maximality).
    let mut batches: Vec<UpdateBatch> = Vec::new();
    let fan = 40u32;
    batches.push(
        UpdateBatch::new(
            (0..fan)
                .map(|i| {
                    Update::Insert(HyperEdge::pair(
                        EdgeId(u64::from(i)),
                        VertexId(0),
                        VertexId(i + 1),
                    ))
                })
                .collect(),
        )
        .unwrap(),
    );
    let w = Workload {
        num_vertices: fan as usize + 1,
        rank: 2,
        batches,
        name: "star".into(),
    };
    let mut matcher = run_and_verify(&w, Config::for_graphs(20));
    // Delete whatever edge is currently matched, repeatedly; the matching must
    // always recover using the parked edges.
    let mut truth = DynamicHypergraph::new(w.num_vertices);
    truth.apply_batch(&w.batches[0]);
    for _ in 0..10 {
        let matched = matcher.matching_ids();
        assert_eq!(matched.len(), 1, "a star has a maximal matching of size 1");
        let batch = vec![Update::Delete(matched[0])];
        truth.apply_batch(&batch);
        matcher.apply_batch(&batch).unwrap();
        assert_eq!(verify_maximality(&truth, &matcher.matching_ids()), Ok(()));
        matcher.verify_invariants().unwrap();
        if truth.num_edges() == 0 {
            break;
        }
    }
}
