//! Boundary-arbitration conformance suite: `ShardedSnapshot::arbitrated_matching`
//! across every engine and shard count.
//!
//! The contract under test (see `pdmm::sharding`):
//!
//! * **global validity + maximality**: on all five engines at 1/2/4/8 shards
//!   the arbitrated matching passes the exact audit the 1-shard conformance
//!   pin uses (`verify_maximality` against the journal-rebuilt global graph),
//!   and its post-arbitration conflict set is empty;
//! * **1-shard no-op**: with one shard the arbitration pass is bit-identical
//!   to the raw merged view of a bare `EngineService` and reports a no-op;
//! * **determinism**: identical runs produce identical `ArbitratedMatching`
//!   structures (not just sizes);
//! * **derived state**: replay and crash recovery (through a `FaultSink`
//!   torn journal) reproduce the arbitrated view bit-identically without
//!   persisting it;
//! * **router reconciliation**: rejected inserts and dropped poison
//!   sub-batches leave no phantom owner/cross entries behind a drain;
//! * **repair hooks**: every engine implements `free_vertices` /
//!   `force_match` with the typed `RepairError` contract.

use pdmm::checkpoint::FaultSink;
use pdmm::engine::{self, RepairError};
use pdmm::hypergraph::graph::DynamicHypergraph;
use pdmm::hypergraph::io;
use pdmm::hypergraph::sharding::RangePartitioner;
use pdmm::hypergraph::streams::{self, Workload};
use pdmm::prelude::*;
use pdmm::service::{JournalSink, MemoryJournal};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn shard_workload() -> Workload {
    streams::skewed_churn(96, 2, 140, 10, 36, 0.55, 2.0, 31)
}

fn builder_for(workload: &Workload, seed: u64) -> EngineBuilder {
    EngineBuilder::new(workload.num_vertices)
        .rank(workload.rank.max(2))
        .seed(seed)
}

fn build_shards(
    kind: EngineKind,
    builder: &EngineBuilder,
    shards: usize,
) -> Vec<Box<dyn MatchingEngine + Send>> {
    (0..shards).map(|_| engine::build(kind, builder)).collect()
}

fn mem() -> Box<dyn JournalSink> {
    Box::new(MemoryJournal::new())
}

/// Drives every batch through `service` (strict drains), returning the last
/// drain's arbitration report.
fn drive(service: &ShardedService, workload: &Workload) -> pdmm::sharding::ArbitrationReport {
    let mut last = pdmm::sharding::ArbitrationReport::default();
    for batch in &workload.batches {
        service.submit(batch.clone());
        let report = service
            .drain()
            .unwrap_or_else(|e| panic!("generated workload refused: {e}"));
        last = report.arbitration;
    }
    last
}

/// Rebuilds the global ground-truth graph from every shard's journal (edge
/// ids never collide across shards, so the per-shard streams compose).
fn global_graph(service: &ShardedService, num_vertices: usize) -> DynamicHypergraph {
    let mut graph = DynamicHypergraph::new(num_vertices);
    for k in 0..service.num_shards() {
        for batch in io::batches_from_string(&service.shard_journal(k)).unwrap() {
            graph.apply_batch(&batch);
        }
    }
    graph
}

// ---------------------------------------------------------------------------
// Validity + maximality, every engine, every shard count
// ---------------------------------------------------------------------------

#[test]
fn arbitrated_matching_is_valid_and_maximal_on_every_engine_and_shard_count() {
    let workload = shard_workload();
    let mut conflicts_seen = 0usize;
    for kind in EngineKind::ALL {
        for &shards in &SHARD_COUNTS {
            let builder = builder_for(&workload, 11);
            let service = ShardedService::new(build_shards(kind, &builder, shards));
            let last = drive(&service, &workload);
            let snapshot = service.snapshot();
            let arbitrated = snapshot.arbitrated_matching();

            // The same audit as the 1-shard conformance pin, but on the
            // *global* journal-rebuilt graph: live, pairwise-disjoint, and no
            // live edge with every endpoint uncovered.
            let graph = global_graph(&service, workload.num_vertices);
            verify_maximality(&graph, &arbitrated.edge_ids()).unwrap_or_else(|e| {
                panic!("{kind} at {shards} shards: arbitrated matching fails audit: {e:?}")
            });

            // Conflicted vertices are empty after arbitration — the tentpole
            // invariant, asserted on the real structure.
            assert_eq!(
                arbitrated.conflicted_vertices(),
                &[] as &[VertexId],
                "{kind} at {shards} shards"
            );

            // The report is consistent with the structure and the raw union.
            let report = arbitrated.report();
            assert_eq!(report, last, "{kind} at {shards} shards: snapshot/drain");
            assert_eq!(report.pre_size, snapshot.size(), "{kind}/{shards}");
            assert_eq!(report.post_size, arbitrated.size(), "{kind}/{shards}");
            assert_eq!(
                report.stats.evicted_edges,
                arbitrated.evicted_edges().len(),
                "{kind}/{shards}"
            );
            assert_eq!(
                report.stats.repaired_edges,
                arbitrated.repaired_edges().len(),
                "{kind}/{shards}"
            );
            conflicts_seen += report.stats.conflicted_vertices;

            // Delta semantics: raw union − evicted + repaired = arbitrated.
            let mut expected: Vec<EdgeId> = snapshot
                .edge_ids()
                .into_iter()
                .filter(|id| arbitrated.evicted_edges().binary_search(id).is_err())
                .chain(arbitrated.repaired_edges().iter().copied())
                .collect();
            expected.sort_unstable();
            assert_eq!(arbitrated.edge_ids(), expected, "{kind}/{shards}");

            // The by-vertex index agrees with the edge set.
            for id in arbitrated.edge_ids() {
                assert!(arbitrated.contains_edge(id));
                for &v in graph.edge(id).unwrap().vertices() {
                    assert_eq!(
                        arbitrated.matched_edge_of(v),
                        Some(id),
                        "{kind}/{shards}: endpoint {v} of {id}"
                    );
                    assert!(arbitrated.is_matched(v));
                }
            }
        }
    }
    // The workload must actually exercise arbitration, or this suite is
    // vacuous: across engines and multi-shard runs some conflicts must arise.
    assert!(conflicts_seen > 0, "workload never produced a conflict");
}

// ---------------------------------------------------------------------------
// 1-shard no-op pin
// ---------------------------------------------------------------------------

#[test]
fn one_shard_arbitration_is_a_bit_identical_noop() {
    let workload = shard_workload();
    for kind in EngineKind::ALL {
        let builder = builder_for(&workload, 7);
        let bare = EngineService::new(engine::build(kind, &builder));
        let sharded = ShardedService::new(build_shards(kind, &builder, 1));
        for batch in &workload.batches {
            bare.submit(batch.clone());
            bare.drain().unwrap();
            sharded.submit(batch.clone());
            let report = sharded.drain().unwrap();
            assert!(
                report.arbitration.stats.is_noop(),
                "{kind}: 1-shard arbitration must never conflict, evict or repair"
            );
        }
        let snapshot = sharded.snapshot();
        let arbitrated = snapshot.arbitrated_matching();
        // Bit-identical to the bare service's published matching.
        assert_eq!(arbitrated.edge_ids(), bare.snapshot().edge_ids(), "{kind}");
        assert_eq!(arbitrated.edge_ids(), snapshot.edge_ids(), "{kind}");
        assert!(arbitrated.evicted_edges().is_empty(), "{kind}");
        assert!(arbitrated.repaired_edges().is_empty(), "{kind}");
        let report = arbitrated.report();
        assert_eq!(report.pre_size, report.post_size, "{kind}");
        assert!((report.retained() - 1.0).abs() < f64::EPSILON, "{kind}");
        for v in (0..workload.num_vertices as u32).map(VertexId) {
            assert_eq!(
                arbitrated.matched_edge_of(v),
                bare.snapshot().matched_edge_of(v),
                "{kind}: vertex {v}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

#[test]
fn arbitration_is_deterministic_across_runs() {
    let workload = shard_workload();
    for kind in [EngineKind::Parallel, EngineKind::RandomReplace] {
        for &shards in &SHARD_COUNTS[1..] {
            let builder = builder_for(&workload, 5);
            let first = ShardedService::new(build_shards(kind, &builder, shards));
            drive(&first, &workload);
            let second = ShardedService::new(build_shards(kind, &builder, shards));
            drive(&second, &workload);
            // The whole structure — edges, delta, index, report — not just
            // the size.
            assert_eq!(
                *first.snapshot().arbitrated_matching(),
                *second.snapshot().arbitrated_matching(),
                "{kind} at {shards} shards: arbitration diverged across runs"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Derived state: replay and crash recovery
// ---------------------------------------------------------------------------

#[test]
fn replay_reproduces_the_arbitrated_view_bit_identically() {
    let workload = shard_workload();
    for &shards in &[2usize, 4] {
        let builder = builder_for(&workload, 5);
        let live = ShardedService::new(build_shards(EngineKind::Parallel, &builder, shards));
        drive(&live, &workload);
        let replayed = ShardedService::replay(
            build_shards(EngineKind::Parallel, &builder, shards),
            &live.journal(),
        )
        .unwrap();
        assert_eq!(
            *replayed.snapshot().arbitrated_matching(),
            *live.snapshot().arbitrated_matching(),
            "{shards} shards"
        );
    }
}

#[test]
fn crash_recovery_reproduces_the_arbitrated_view_through_a_torn_journal() {
    let workload = streams::random_churn(100, 2, 160, 12, 30, 0.5, 41);
    let batches: Vec<UpdateBatch> = workload
        .batches
        .iter()
        .filter(|b| !b.is_empty())
        .cloned()
        .collect();
    let mid = batches.len() / 2;
    let shards = 4usize;
    let builder = builder_for(&workload, 13);
    let engines = || build_shards(EngineKind::Parallel, &builder, shards);

    // Scout run: size the victim shard's journal so the kill point lands
    // strictly inside its post-checkpoint tail.
    let scout = ShardedService::new(engines());
    let mut victim_bytes_at_mid = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        scout.submit(batch.clone());
        scout.drain().unwrap();
        if i + 1 == mid {
            victim_bytes_at_mid = io::journal_blocks(&scout.shard_journal(0))
                .iter()
                .map(|b| b.len() as u64 + 1)
                .sum();
        }
    }
    let victim_total: u64 = io::journal_blocks(&scout.shard_journal(0))
        .iter()
        .map(|b| b.len() as u64 + 1)
        .sum();
    assert!(victim_total > victim_bytes_at_mid + 1);
    let kill = victim_bytes_at_mid + (victim_total - victim_bytes_at_mid) / 2;

    // Real run: shard 0's journal tears mid-tail.
    let services: Vec<EngineService> = engines()
        .into_iter()
        .enumerate()
        .map(|(k, e)| {
            let service = EngineService::new(e);
            if k == 0 {
                service.with_journal(Box::new(FaultSink::torn_at_byte(mem(), kill)))
            } else {
                service
            }
        })
        .collect();
    let service =
        ShardedService::from_services(services, Box::new(pdmm::sharding::HashPartitioner));
    for batch in &batches[..mid] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }
    let checkpoint = service.checkpoint().unwrap();
    for batch in &batches[mid..] {
        service.submit(batch.clone());
        service.drain().unwrap();
    }

    // "Crash": recover from checkpoint + surviving journals.
    let journals: Vec<String> = (0..shards).map(|k| service.shard_journal(k)).collect();
    let recovered = ShardedService::recover(
        engines(),
        Box::new(pdmm::sharding::HashPartitioner),
        &checkpoint,
        &journals,
        (0..shards).map(|_| mem()).collect(),
    )
    .unwrap_or_else(|e| panic!("kill at byte {kill}: {e}"));
    assert!(
        recovered.shard_snapshot(0).committed_batches()
            < service.shard_snapshot(0).committed_batches(),
        "the kill point must lose data"
    );

    // The arbitrated view was never persisted, yet recovery reproduces
    // exactly the view a clean replay of the recovered history computes.
    let twin = ShardedService::replay(engines(), &recovered.journal()).unwrap();
    assert_eq!(
        *recovered.snapshot().arbitrated_matching(),
        *twin.snapshot().arbitrated_matching(),
        "kill at byte {kill}"
    );
    // And it is a valid, maximal matching of the recovered global graph.
    let graph = global_graph(&recovered, workload.num_vertices);
    verify_maximality(
        &graph,
        &recovered.snapshot().arbitrated_matching().edge_ids(),
    )
    .unwrap_or_else(|e| panic!("kill at byte {kill}: recovered audit: {e:?}"));

    // Continued serving keeps the recovered and replayed arbitration in
    // lock-step.
    let extra = UpdateBatch::new(vec![Update::Insert(HyperEdge::pair(
        EdgeId(2_000_000),
        VertexId(0),
        VertexId(1),
    ))])
    .unwrap();
    recovered.submit(extra.clone());
    twin.submit(extra);
    recovered.drain().unwrap();
    twin.drain().unwrap();
    assert_eq!(
        *recovered.snapshot().arbitrated_matching(),
        *twin.snapshot().arbitrated_matching()
    );
}

// ---------------------------------------------------------------------------
// A hand-built conflict: award, evict, repair, exactly
// ---------------------------------------------------------------------------

#[test]
fn award_evict_repair_resolves_a_cross_shard_conflict_deterministically() {
    // RangePartitioner over 8 vertices, 2 shards: 0..4 → shard 0, 4..8 →
    // shard 1.  Edge 1 (2,4) is cross-shard, owned by shard 0; edge 2 (4,5)
    // is shard-1-local.  Both shards match their edge, so vertex 4 is
    // conflicted; the (owner shard, edge id) rule awards it to edge 1.
    let builder = EngineBuilder::new(8).seed(1);
    let service = ShardedService::with_partitioner(
        build_shards(EngineKind::Parallel, &builder, 2),
        Box::new(RangePartitioner::new(8)),
    );
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1), pair(1, 2, 4), pair(2, 4, 5)]).unwrap());
    let report = service.drain().unwrap();

    // Raw view: both shards matched over vertex 4.
    let snap = service.snapshot();
    assert_eq!(snap.conflicted_vertices(), &[VertexId(4)]);
    assert_eq!(snap.cross_shard_matched(), &[EdgeId(1)]);
    assert_eq!(snap.size(), 3, "raw union over-counts");

    // Arbitrated view: edge 2 evicted (lost vertex 4), vertex 5 freed, no
    // repair possible yet (edge 2 itself is the only candidate and vertex 4
    // is claimed by the winner).
    let stats = report.arbitration.stats;
    assert_eq!(stats.conflicted_vertices, 1);
    assert_eq!(stats.evicted_edges, 1);
    assert_eq!(stats.freed_vertices, 1);
    assert_eq!(stats.repair_candidates, 1);
    assert_eq!(stats.repaired_edges, 0);
    let arbitrated = snap.arbitrated_matching();
    assert_eq!(arbitrated.edge_ids(), vec![EdgeId(0), EdgeId(1)]);
    assert_eq!(arbitrated.evicted_edges(), &[EdgeId(2)]);
    assert_eq!(arbitrated.matched_edge_of(VertexId(4)), Some(EdgeId(1)));
    assert!(!arbitrated.is_matched(VertexId(5)));

    // Edge 3 (5,6) gives the repair wave a candidate over freed vertex 5:
    // shard 1's engine cannot match it (its local matching still holds edge
    // 2 over vertex 5), but arbitration repairs it into the global view.
    service.submit(UpdateBatch::new(vec![pair(3, 5, 6)]).unwrap());
    let report = service.drain().unwrap();
    let stats = report.arbitration.stats;
    assert_eq!(stats.conflicted_vertices, 1);
    assert_eq!(stats.evicted_edges, 1);
    assert_eq!(stats.freed_vertices, 1);
    assert_eq!(stats.repair_candidates, 2, "edges 2 and 3 touch vertex 5");
    assert_eq!(stats.repaired_edges, 1);
    let snap = service.snapshot();
    let arbitrated = snap.arbitrated_matching();
    assert_eq!(arbitrated.edge_ids(), vec![EdgeId(0), EdgeId(1), EdgeId(3)]);
    assert_eq!(arbitrated.repaired_edges(), &[EdgeId(3)]);
    assert_eq!(arbitrated.matched_edge_of(VertexId(5)), Some(EdgeId(3)));
    assert!(arbitrated.contains_edge(EdgeId(3)));
    assert!(!arbitrated.contains_edge(EdgeId(2)));
    assert_eq!(arbitrated.report().pre_size, 3);
    assert_eq!(arbitrated.report().post_size, 3);
    assert!((arbitrated.report().retained() - 1.0).abs() < f64::EPSILON);

    // The arbitrated matching is valid and maximal on the global graph even
    // though no shard's local matching is.
    let graph = global_graph(&service, 8);
    verify_maximality(&graph, &arbitrated.edge_ids()).unwrap();
}

// ---------------------------------------------------------------------------
// Router reconciliation (satellite: exact boundary sets)
// ---------------------------------------------------------------------------

#[test]
fn rejected_inserts_leave_no_phantom_router_entries_after_a_lossy_drain() {
    // Vertex 9 is out of the 8-vertex space: the insert is context-free
    // valid, routes (recording a provisional owner), and is rejected at the
    // engine.  The lossy drain must reconcile the entry away.
    let builder = EngineBuilder::new(8).seed(4);
    let service = ShardedService::with_partitioner(
        build_shards(EngineKind::Parallel, &builder, 2),
        Box::new(RangePartitioner::new(8)),
    );
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1), pair(1, 2, 9)]).unwrap());
    assert_eq!(
        service.owner_of_edge(EdgeId(1)),
        Some(0),
        "routed in flight"
    );
    let report = service.drain_lossy();
    assert_eq!(report.rejected, 1);
    assert_eq!(service.owner_of_edge(EdgeId(0)), Some(0));
    assert_eq!(
        service.owner_of_edge(EdgeId(1)),
        None,
        "rejected insert must not linger in the router"
    );
    assert!(!service.is_cross_shard(EdgeId(1)));

    // A rejected *re*-insert of a live id keeps the holder's entry (the
    // original insert still stands) — the regression pin from the routing
    // suite, now under reconciliation.
    service.submit(UpdateBatch::new(vec![pair(0, 5, 6)]).unwrap());
    let report = service.drain_lossy();
    assert_eq!(report.rejected, 1);
    assert_eq!(service.owner_of_edge(EdgeId(0)), Some(0));
}

#[test]
fn a_dropped_poison_sub_batch_is_reconciled_out_of_the_router() {
    let builder = EngineBuilder::new(8).seed(6);
    let service = ShardedService::with_partitioner(
        build_shards(EngineKind::Parallel, &builder, 2),
        Box::new(RangePartitioner::new(8)),
    );
    let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
    service.submit(UpdateBatch::new(vec![pair(0, 0, 1)]).unwrap());
    service.drain().unwrap();

    // A poison sub-batch on shard 0: the unknown deletion fails validation,
    // so the whole sub-batch — including the delete of live edge 0 and the
    // insert of edge 5 — is dropped.  Routing had already removed edge 0's
    // entry and recorded edge 5's; both must be reconciled back to what the
    // shard actually holds.
    service.submit(
        UpdateBatch::new(vec![
            Update::Delete(EdgeId(0)),
            pair(5, 2, 3),
            Update::Delete(EdgeId(99)),
        ])
        .unwrap(),
    );
    let err = service.drain().unwrap_err();
    assert_eq!(err.shard, 0);
    assert_eq!(
        service.owner_of_edge(EdgeId(5)),
        None,
        "insert from the dropped sub-batch must not linger"
    );
    assert_eq!(
        service.owner_of_edge(EdgeId(0)),
        Some(0),
        "entry removed by the dropped deletion must be restored"
    );
    // The restored entry routes like day one: deleting edge 0 still follows
    // the holder, and re-inserting id 5 is a fresh insert.
    service.submit(UpdateBatch::new(vec![Update::Delete(EdgeId(0)), pair(5, 2, 3)]).unwrap());
    service.drain().unwrap();
    assert_eq!(service.owner_of_edge(EdgeId(0)), None);
    assert_eq!(service.owner_of_edge(EdgeId(5)), Some(0));
    assert_eq!(service.snapshot().edge_ids(), vec![EdgeId(5)]);
}

// ---------------------------------------------------------------------------
// Engine repair hooks
// ---------------------------------------------------------------------------

#[test]
fn every_engine_implements_the_repair_hooks_with_typed_errors() {
    for kind in EngineKind::ALL {
        let builder = EngineBuilder::new(6).rank(2).seed(3);
        let mut engine = engine::build(kind, &builder);
        let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
        // Edges 0 and 1 are matched by every engine (disjoint, inserted
        // free); edge 2 stays blocked (both endpoints already covered).
        engine
            .apply_batch(&[pair(0, 0, 1), pair(1, 2, 3), pair(2, 1, 2)])
            .unwrap();
        assert_eq!(engine.matching_size(), 2, "{kind}");

        // free_vertices: every engine answers (no default None), sorted.
        assert_eq!(
            engine.free_vertices(),
            Some(vec![VertexId(4), VertexId(5)]),
            "{kind}"
        );

        // force_match error taxonomy.
        assert_eq!(
            engine.force_match(EdgeId(99)),
            Err(RepairError::UnknownEdge { id: EdgeId(99) }),
            "{kind}"
        );
        assert_eq!(
            engine.force_match(EdgeId(0)),
            Err(RepairError::AlreadyMatched { id: EdgeId(0) }),
            "{kind}"
        );
        match engine.force_match(EdgeId(2)) {
            Err(RepairError::EndpointMatched { id, vertex }) => {
                assert_eq!(id, EdgeId(2), "{kind}");
                assert!(vertex == VertexId(1) || vertex == VertexId(2), "{kind}");
            }
            other => panic!("{kind}: expected EndpointMatched, got {other:?}"),
        }
        // Errors never mutate: the matching and free set are unchanged.
        assert_eq!(engine.matching_size(), 2, "{kind}");
        assert_eq!(
            engine.free_vertices(),
            Some(vec![VertexId(4), VertexId(5)]),
            "{kind}"
        );
    }
}

#[test]
fn force_match_grafts_a_validated_edge_into_a_non_maximal_state() {
    // Engines keep their matchings maximal after every batch, so the Ok path
    // of `force_match` is only reachable from a state an embedder restored —
    // exactly the contract: `restore_state` on the recompute engines accepts
    // any *valid* matching (live, disjoint), maximal or not.  Drop one
    // matched id from a saved blob and graft it back.
    for kind in [EngineKind::RecomputeSequential, EngineKind::StaticRecompute] {
        let builder = EngineBuilder::new(6).rank(2).seed(3);
        let mut engine = engine::build(kind, &builder);
        let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
        engine.apply_batch(&[pair(0, 0, 1), pair(1, 2, 3)]).unwrap();
        let blob = engine.save_state().unwrap();

        // Remove the last id from the "matching" line.
        let tampered: String = blob
            .lines()
            .map(|line| {
                if let Some(rest) = line.strip_prefix("matching") {
                    let mut ids: Vec<&str> = rest.split_whitespace().collect();
                    ids.pop();
                    if ids.is_empty() {
                        "matching".to_string()
                    } else {
                        format!("matching {}", ids.join(" "))
                    }
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let mut restored = engine::build(kind, &builder);
        restored.restore_state(&tampered).unwrap();
        assert_eq!(restored.matching_size(), 1, "{kind}: non-maximal restore");

        // The dropped edge has free endpoints again: force_match accepts it
        // and the engine is back to the full matching.
        let target = if restored.matching().any(|id| id == EdgeId(0)) {
            EdgeId(1)
        } else {
            EdgeId(0)
        };
        restored.force_match(target).unwrap();
        assert_eq!(restored.matching_size(), 2, "{kind}");
        assert_eq!(
            restored.force_match(target),
            Err(RepairError::AlreadyMatched { id: target }),
            "{kind}"
        );
        assert_eq!(
            restored.free_vertices(),
            Some(vec![VertexId(4), VertexId(5)]),
            "{kind}"
        );
    }
}

// ---------------------------------------------------------------------------
// Service-layer repair surface
// ---------------------------------------------------------------------------

#[test]
fn service_free_vertices_reflects_the_committed_matching() {
    let builder = EngineBuilder::new(6).rank(2).seed(9);
    for kind in EngineKind::ALL {
        let service = EngineService::new(engine::build(kind, &builder));
        let pair = |id, a, b| Update::Insert(HyperEdge::pair(EdgeId(id), VertexId(a), VertexId(b)));
        service.submit(UpdateBatch::new(vec![pair(0, 0, 1), pair(1, 2, 3)]).unwrap());
        service.drain().unwrap();
        assert_eq!(
            service.free_vertices(),
            vec![VertexId(4), VertexId(5)],
            "{kind}"
        );
    }
}
