//! Social-network friendship stream (the §1 "intrinsically dynamic" scenario).
//!
//! ```bash
//! cargo run --release --example social_stream
//! ```
//!
//! A power-law (Chung–Lu) friendship graph evolves over time: new friendships are
//! created around hub accounts and old ones are dropped.  The application needs a
//! *matching* over the current friendship graph at all times — think of pairing
//! users up for a "catch up with a friend" prompt, where no user may be paired
//! twice — and the matching must stay maximal so that nobody who could be paired is
//! left out.  Each "tick" of the platform delivers one batch of updates; both the
//! dynamic engine and the recompute baseline are built from the *same*
//! `EngineBuilder` and driven through the *same* `MatchingEngine` API, so the
//! comparison is apples to apples.

use pdmm::engine::{self, EngineKind};
use pdmm::hypergraph::generators::chung_lu_graph;
use pdmm::hypergraph::streams::sliding_window;
use pdmm::prelude::*;

fn main() {
    let users = 50_000;
    let friendships = 200_000;
    let tick_size = 2_000; // updates per tick
    let window = 20; // a friendship lasts 20 ticks

    println!("== social friendship stream ==");
    println!("users = {users}, friendships = {friendships}, tick = {tick_size} updates");

    // The oblivious adversary: the whole update schedule is fixed up front.
    let edges = chung_lu_graph(users, friendships, 2.4, 1234, 0);
    let workload = sliding_window(users, edges, tick_size, window);

    let builder = EngineBuilder::new(users).seed(7);
    let mut dynamic = engine::build(EngineKind::Parallel, &builder);
    let mut recompute = engine::build(EngineKind::RecomputeSequential, &builder);

    let mut dynamic_time = std::time::Duration::ZERO;
    let mut recompute_time = std::time::Duration::ZERO;

    for (tick, batch) in workload.batches.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let report = dynamic.apply_batch(batch).expect("valid tick");
        dynamic_time += t0.elapsed();

        let t1 = std::time::Instant::now();
        recompute.apply_batch(batch).expect("valid tick");
        recompute_time += t1.elapsed();

        if tick % 25 == 0 {
            println!(
                "tick {tick:>4}: matching = {:>6}, batch depth = {:>5} rounds, batch work = {:>8}",
                report.matching_size, report.depth, report.work
            );
        }
    }

    let updates = dynamic.metrics().updates;
    println!(
        "\nprocessed {updates} updates over {} ticks",
        workload.batches.len()
    );
    println!(
        "{}:   total {dynamic_time:?} ({:.1} µs/update), final matching {}",
        dynamic.name(),
        dynamic_time.as_micros() as f64 / updates as f64,
        dynamic.matching_size()
    );
    println!(
        "{} baseline: total {recompute_time:?} ({:.1} µs/update), final matching {}",
        recompute.name(),
        recompute_time.as_micros() as f64 / updates as f64,
        recompute.matching_size()
    );
    println!(
        "speedup of dynamic over recompute: {:.1}x",
        recompute_time.as_secs_f64() / dynamic_time.as_secs_f64().max(1e-9)
    );

    dynamic.verify().expect("invariants hold");
}
