//! Quickstart: maintain a maximal matching of a dynamic graph.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random graph, streams it into the parallel dynamic matcher in batches,
//! deletes a slice of the edges again, and prints the matching size, the leveling
//! parameters, and the work/depth counters the paper's theorems are about.

use pdmm::hypergraph::generators::gnm_graph;
use pdmm::hypergraph::streams::{insert_only, insert_then_teardown};
use pdmm::prelude::*;

fn main() {
    let n = 10_000;
    let m = 40_000;
    let batch_size = 1_024;

    println!("== pdmm quickstart ==");
    println!("graph: n = {n}, m = {m}, batch size = {batch_size}");

    // 1. Insert the whole graph in batches.
    let edges = gnm_graph(n, m, 7, 0);
    let insert_stream = insert_only(n, edges.clone(), batch_size);
    let mut matcher = ParallelDynamicMatching::new(n, Config::for_graphs(42));
    for batch in &insert_stream.batches {
        matcher.apply_batch(batch);
    }
    println!(
        "after insertion: matching size = {}, levels L = {}",
        matcher.matching_size(),
        matcher.num_levels()
    );

    // 2. Tear a third of the graph down again, batch by batch.
    let teardown = insert_then_teardown(n, edges, batch_size, 99);
    let deletion_batches: Vec<_> = teardown
        .batches
        .iter()
        .filter(|b| b.iter().all(Update::is_delete))
        .take(m / batch_size / 3)
        .cloned()
        .collect();
    for batch in &deletion_batches {
        let report = matcher.apply_batch(batch);
        if report.matched_deletions > 0 {
            // The expensive case the leveling scheme exists for.
        }
    }
    println!(
        "after deleting {} edges: matching size = {}",
        deletion_batches.iter().map(Vec::len).sum::<usize>(),
        matcher.matching_size()
    );

    // 3. The quantities Theorem 4.1 bounds: total work and depth, per update.
    let cost = matcher.cost().snapshot();
    let updates = matcher.metrics().updates;
    println!(
        "work = {} ({:.1} per update), depth = {} rounds over {} batches ({:.1} per batch)",
        cost.work,
        cost.work as f64 / updates as f64,
        cost.depth,
        matcher.metrics().batches,
        cost.depth as f64 / matcher.metrics().batches as f64
    );

    // 4. Invariants hold (Invariant 3.1/3.2 + maximality).
    matcher.verify_invariants().expect("invariants hold");
    println!("invariants verified ✓");
}
