//! Quickstart: maintain a maximal matching of a dynamic graph.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random graph, streams it into the parallel dynamic matcher in batches,
//! deletes a slice of the edges again, and prints the matching size, the leveling
//! parameters, and the work/depth counters the paper's theorems are about.

use pdmm::hypergraph::generators::gnm_graph;
use pdmm::hypergraph::streams::{insert_only, insert_then_teardown};
use pdmm::prelude::*;

fn main() {
    let n = 10_000;
    let m = 40_000;
    let batch_size = 1_024;

    println!("== pdmm quickstart ==");
    println!("graph: n = {n}, m = {m}, batch size = {batch_size}");

    // 1. Configure the engine through the builder and insert the whole graph in
    //    batches.  Invalid batches would come back as typed errors, not panics.
    let edges = gnm_graph(n, m, 7, 0);
    let insert_stream = insert_only(n, edges.clone(), batch_size);
    let builder = EngineBuilder::new(n).seed(42).capacity_hint(2 * m);
    let mut matcher = ParallelDynamicMatching::from_builder(&builder);
    for batch in &insert_stream.batches {
        matcher
            .apply_batch(batch)
            .expect("generated stream is valid");
    }
    println!(
        "after insertion: matching size = {}, levels L = {}",
        matcher.matching_size(),
        matcher.num_levels()
    );

    // 2. Tear a third of the graph down again, batch by batch.
    let teardown = insert_then_teardown(n, edges, batch_size, 99);
    let deletion_batches: Vec<_> = teardown
        .batches
        .iter()
        .filter(|b| b.iter().all(Update::is_delete))
        .take(m / batch_size / 3)
        .cloned()
        .collect();
    let mut forced_repairs = 0usize;
    for batch in &deletion_batches {
        let report = matcher.apply_batch(batch).expect("deletions are valid");
        // Deletions of matched edges are the expensive case the leveling scheme
        // exists for.
        forced_repairs += report.matched_deletions;
    }
    println!(
        "after deleting {} edges ({} hit matched edges): matching size = {}",
        deletion_batches.iter().map(UpdateBatch::len).sum::<usize>(),
        forced_repairs,
        matcher.matching_size()
    );

    // 3. The quantities Theorem 4.1 bounds: total work and depth, per update —
    //    uniform across every engine via the MatchingEngine metrics.
    let metrics = matcher.metrics();
    println!(
        "work = {} ({:.1} per update), depth = {} rounds over {} batches ({:.1} per batch)",
        metrics.work,
        metrics.work_per_update(),
        metrics.depth,
        metrics.batches,
        metrics.depth as f64 / metrics.batches.max(1) as f64
    );

    // 4. Invariants hold (Invariant 3.1/3.2 + maximality), and the matching can
    //    be inspected zero-copy.
    matcher.verify_invariants().expect("invariants hold");
    let covered_vertices = matcher.matching().count() * 2;
    println!("invariants verified ✓ ({covered_vertices} endpoints covered)");
}
