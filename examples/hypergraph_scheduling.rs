//! Hypergraph maximal matching as a dynamic task scheduler.
//!
//! ```bash
//! cargo run --release --example hypergraph_scheduling
//! ```
//!
//! A hyperedge is a *task* that needs an exclusive set of up to `r` resources
//! (machines, GPUs, file locks).  A matching is a conflict-free schedule: no two
//! running tasks share a resource.  A *maximal* matching means no submitted task
//! that could run right now is left idle — exactly the greedy admission guarantee a
//! scheduler wants.  Tasks are submitted and cancelled in batches through the
//! staged batch-session API (the shape a real admission queue has: stage
//! submissions as they arrive, validate and deduplicate, commit once per tick).

use pdmm::hypergraph::streams::random_churn;
use pdmm::prelude::*;

fn main() {
    let resources = 5_000; // vertices
    let rank = 4; // each task locks up to 4 resources
    let initial_tasks = 20_000;
    let batches = 40;
    let batch_size = 1_000;

    println!("== dynamic task scheduling over {resources} resources (rank {rank}) ==");

    // Submit an initial wave of tasks, then churn: cancellations + new submissions.
    let workload = random_churn(
        resources,
        rank,
        initial_tasks,
        batches,
        batch_size,
        0.5,
        2024,
    );

    let builder = EngineBuilder::new(resources)
        .rank(rank)
        .seed(99)
        .capacity_hint(initial_tasks + batches * batch_size);
    let mut scheduler = ParallelDynamicMatching::from_builder(&builder);

    let mut running_history = Vec::new();
    for (i, batch) in workload.batches.iter().enumerate() {
        // Admission control: stage each submission/cancellation, then commit the
        // tick as one batch.  A malformed request would surface here as a typed
        // BatchError instead of corrupting the schedule.
        let mut tick = scheduler.begin_batch();
        for update in batch {
            tick.stage(update.clone()).expect("well-formed request");
        }
        let report = tick.commit().expect("validated tick");
        running_history.push(report.matching_size);
        if i % 8 == 0 {
            println!(
                "batch {i:>3}: {:>6} tasks running, {:>4} forced reschedules, depth {:>4} rounds",
                report.matching_size, report.matched_deletions, report.depth
            );
        }
    }

    let metrics = scheduler.epoch_metrics();
    println!("\n-- summary --");
    println!("updates processed:        {}", metrics.updates);
    println!(
        "tasks admitted (epochs):  {}",
        metrics.total_epochs_created()
    );
    println!("cancelled while running:  {}", metrics.total_natural_ends());
    println!("pre-empted by scheduler:  {}", metrics.total_induced_ends());
    println!("tasks parked in D(·):     {}", metrics.temp_deletions);
    println!(
        "amortized work per update: {:.1}",
        scheduler.metrics().work_per_update()
    );
    println!("levels used: {} (α = {})", scheduler.num_levels(), 4 * rank);

    // The resource-cover view (§2): endpoints of the matching form a vertex cover,
    // i.e. every submitted task touches at least one resource that is in use.
    scheduler.verify_invariants().expect("invariants hold");
    println!("schedule is maximal and invariants hold ✓");

    let avg_running: f64 =
        running_history.iter().sum::<usize>() as f64 / running_history.len() as f64;
    println!("average concurrently running tasks: {avg_running:.0}");
}
