//! Serving a matching over TCP: start a [`pdmm::net`] server on loopback,
//! speak the update-stream protocol over a real socket, and watch admission
//! control answer.
//!
//! ```text
//! cargo run --release --example serve_tcp
//! ```
//!
//! A batch is newline-framed update lines terminated by a blank line; the
//! server answers one line per batch: `OK <updates> <sub_batches>
//! <cross_shard>` on admission, `RETRY <hint_ms>` / `SHED` under backpressure,
//! `ERR <message>` on malformed input.

use pdmm::net::{frame_batch, serve, Response, ServerConfig};
use pdmm::prelude::*;
use pdmm::service::EngineService;
use pdmm::sharding::HashPartitioner;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // Two shards, each a full engine + service; the router splits batches.
    let num_vertices = 512;
    let services = (0..2)
        .map(|_| {
            let builder = EngineBuilder::new(num_vertices).seed(7);
            EngineService::new(pdmm::engine::build(EngineKind::Parallel, &builder))
        })
        .collect();
    let service = Arc::new(ShardedService::from_services(
        services,
        Box::new(HashPartitioner),
    ));
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())?;
    println!("serving on {}", handle.local_addr());

    // A client: one socket, a churny workload from the stream generators.
    let stream = TcpStream::connect(handle.local_addr())?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let workload = pdmm::hypergraph::streams::skewed_churn(
        num_vertices,
        2,   // rank
        64,  // initial edges
        8,   // churn batches
        16,  // updates per batch
        0.6, // insert fraction
        1.5, // skew
        42,  // seed
    );
    for batch in &workload.batches {
        writer.write_all(frame_batch(batch).as_bytes())?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let response = Response::parse(&line).expect("server speaks the protocol");
        println!("batch of {:>2} -> {response}", batch.len());
        assert!(
            !response.is_backpressure(),
            "default queues never fill at this pace"
        );
    }
    drop(writer);

    // Shutdown drains every admitted batch, then the snapshot is final.
    let stats = handle.shutdown();
    let snapshot = service.snapshot();
    println!(
        "admitted {} batch(es) on {} connection(s), committed {}, matching size {}",
        stats.admitted,
        stats.connections,
        snapshot.committed_batches(),
        snapshot.size()
    );

    // The journal replays onto fresh engines, bit-identically.
    let engines = (0..2)
        .map(|_| {
            let builder = EngineBuilder::new(num_vertices).seed(7);
            pdmm::engine::build(EngineKind::Parallel, &builder)
        })
        .collect();
    let replayed = ShardedService::replay(engines, &service.journal()).expect("journal replays");
    assert_eq!(replayed.snapshot().edge_ids(), snapshot.edge_ids());
    println!("replayed the journal: snapshots identical");
    Ok(())
}
