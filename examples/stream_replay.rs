//! Generate, save, and replay an update stream from its on-disk representation.
//!
//! ```bash
//! cargo run --release --example stream_replay
//! ```
//!
//! Workloads are plain-text files (`+ id v1 v2 …` / `- id`, one batch per block),
//! so they can be generated once, versioned, shared with other implementations, and
//! replayed deterministically.  This example writes a churn workload to a temporary
//! file, reads it back, replays it through the dynamic matcher via the staged
//! batch-session path, and shows that the replay is byte-for-byte the same stream
//! and produces the same matching as the in-memory workload.

use pdmm::hypergraph::io;
use pdmm::hypergraph::streams::random_churn;
use pdmm::prelude::*;

fn main() {
    let n = 2_000;
    let workload = random_churn(n, 2, 4_000, 30, 500, 0.5, 7);
    println!("== update-stream replay ==");
    println!(
        "workload: {} ({} batches, {} updates)",
        workload.name,
        workload.batches.len(),
        workload.total_updates()
    );

    // 1. Serialize the stream and write it to a file.
    let text = io::batches_to_string(&workload.batches);
    let path = std::env::temp_dir().join("pdmm_stream_replay.updates");
    std::fs::write(&path, &text).expect("write stream file");
    println!("wrote {} bytes to {}", text.len(), path.display());

    // 2. Read it back and check it is the identical stream.
    let loaded = std::fs::read_to_string(&path).expect("read stream file");
    let batches = io::batches_from_string(&loaded).expect("parse stream file");
    assert_eq!(batches, workload.batches, "round-trip must be lossless");
    let replayed = Workload {
        num_vertices: n,
        rank: workload.rank,
        batches,
        name: format!("{} (from file)", workload.name),
    };

    // 3. Replay both through the matcher with the same seed, feeding every batch
    //    through the validating session path (`Workload::drive`): identical
    //    results.
    let builder = EngineBuilder::new(n).seed(99);
    let mut from_memory = ParallelDynamicMatching::from_builder(&builder);
    workload.drive(&mut from_memory).expect("valid stream");
    let mut from_file = ParallelDynamicMatching::from_builder(&builder);
    let reports = replayed.drive(&mut from_file).expect("valid stream");

    let mut a = from_memory.matching_ids();
    let mut b = from_file.matching_ids();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "replay must reproduce the exact matching");

    let metrics = from_file.metrics();
    println!(
        "replayed {} batches: matching size {}, total work {}, total depth {} — identical to the in-memory run ✓",
        reports.len(),
        from_file.matching_size(),
        metrics.work,
        metrics.depth
    );

    // 4. The serve path does the same thing end to end: a long-lived
    //    EngineService journals every committed batch in this exact format, and
    //    EngineService::replay rebuilds identical state from the journal.
    let builder = builder.clone();
    let service = EngineService::new(pdmm::engine::build(EngineKind::Parallel, &builder));
    for batch in &workload.batches {
        service.submit(batch.clone());
        service.drain().expect("valid stream");
    }
    let rebuilt = EngineService::replay(
        pdmm::engine::build(EngineKind::Parallel, &builder),
        &service.journal(),
    )
    .expect("a service journal always replays");
    assert_eq!(
        rebuilt.snapshot().edge_ids(),
        service.snapshot().edge_ids(),
        "service replay must reproduce the exact matching"
    );
    println!(
        "service journal: {} bytes, replayed to an identical matching of size {} ✓",
        service.journal().len(),
        rebuilt.snapshot().size()
    );

    let _ = std::fs::remove_file(&path);
}
