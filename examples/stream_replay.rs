//! Generate, save, and replay an update stream from its on-disk representation.
//!
//! ```bash
//! cargo run --release --example stream_replay
//! ```
//!
//! Workloads are plain-text files (`+ id v1 v2 …` / `- id`, one batch per block),
//! so they can be generated once, versioned, shared with other implementations, and
//! replayed deterministically.  This example writes a churn workload to a temporary
//! file, reads it back, replays it through the dynamic matcher, and shows that the
//! replay is byte-for-byte the same stream and produces the same matching as the
//! in-memory workload.

use pdmm::hypergraph::io;
use pdmm::hypergraph::streams::random_churn;
use pdmm::prelude::*;

fn main() {
    let n = 2_000;
    let workload = random_churn(n, 2, 4_000, 30, 500, 0.5, 7);
    println!("== update-stream replay ==");
    println!(
        "workload: {} ({} batches, {} updates)",
        workload.name,
        workload.batches.len(),
        workload.batches.iter().map(Vec::len).sum::<usize>()
    );

    // 1. Serialize the stream and write it to a file.
    let text = io::batches_to_string(&workload.batches);
    let path = std::env::temp_dir().join("pdmm_stream_replay.updates");
    std::fs::write(&path, &text).expect("write stream file");
    println!("wrote {} bytes to {}", text.len(), path.display());

    // 2. Read it back and check it is the identical stream.
    let loaded = std::fs::read_to_string(&path).expect("read stream file");
    let batches = io::batches_from_string(&loaded).expect("parse stream file");
    assert_eq!(batches, workload.batches, "round-trip must be lossless");

    // 3. Replay both through the matcher with the same seed: identical results.
    let mut from_memory = ParallelDynamicMatching::new(n, Config::for_graphs(99));
    for batch in &workload.batches {
        from_memory.apply_batch(batch);
    }
    let mut from_file = ParallelDynamicMatching::new(n, Config::for_graphs(99));
    for batch in &batches {
        from_file.apply_batch(batch);
    }
    let mut a = from_memory.matching();
    let mut b = from_file.matching();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "replay must reproduce the exact matching");

    println!(
        "replayed {} batches: matching size {}, total work {}, total depth {} — identical to the in-memory run ✓",
        batches.len(),
        from_file.matching_size(),
        from_file.cost().total_work(),
        from_file.cost().total_depth()
    );

    let _ = std::fs::remove_file(&path);
}
